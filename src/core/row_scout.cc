#include "core/row_scout.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "obs/profiler.hh"
#include "obs/timer.hh"

namespace utrr
{

RowScout::RowScout(SoftMcHost &host, DiscoveredMapping mapping,
                   RowScoutConfig config)
    : host(host), mapping(std::move(mapping)), cfg(std::move(config))
{
    UTRR_ASSERT(cfg.rowStart >= 0 && cfg.rowEnd > cfg.rowStart,
                "bad row range");
    UTRR_ASSERT(cfg.initialT > 0 && cfg.stepT > 0, "bad T schedule");
    burnedPhys.insert(cfg.excludePhys.begin(), cfg.excludePhys.end());
}

std::map<Row, int>
RowScout::scanFailingRows(Time t)
{
    // Batch profiling pass: initialize every row in the range, let the
    // whole range decay for t with refresh disabled, then read back.
    UTRR_PROF_SCOPE_SIM("row_scout.scan", host.clockPtr());
    ScopedTimer timer(host.attachedMetrics(), "row_scout.scan");
    SimPhase phase(&host.trace(), "rs_scan", [this] { return host.now(); });
    for (Row r = cfg.rowStart; r < cfg.rowEnd; ++r)
        host.writeRow(cfg.bank, r, cfg.pattern);
    host.wait(t);

    std::map<Row, int> failing;
    for (Row r = cfg.rowStart; r < cfg.rowEnd; ++r) {
        const RowReadout readout = host.readRow(cfg.bank, r);
        const int flips = readout.countFlipsVs(cfg.pattern, r);
        if (flips > 0)
            failing[r] = flips;
    }
    return failing;
}

bool
RowScout::validateRetention(Row logical_row, Time t, int checks)
{
    UTRR_PROF_SCOPE_SIM("row_scout.validate", host.clockPtr());
    ScopedTimer timer(host.attachedMetrics(), "row_scout.validate");
    for (int i = 0; i < checks; ++i) {
        ++validations;
        // Hold check: the row must retain its data strictly longer
        // than t/2 (0.55*t adds margin for the time an experiment
        // spends hammering before the mid-point REF). A row that fails
        // before t/2 could never be saved by a TRR-induced refresh and
        // would always read as "not refreshed" (paper footnote 4).
        host.writeRow(cfg.bank, logical_row, cfg.pattern);
        host.wait(t * 55 / 100);
        if (host.readRow(cfg.bank, logical_row)
                .countFlipsVs(cfg.pattern, logical_row) != 0) {
            return false;
        }
        // Fail check: the row must reliably fail after t.
        host.writeRow(cfg.bank, logical_row, cfg.pattern);
        host.wait(t);
        if (host.readRow(cfg.bank, logical_row)
                .countFlipsVs(cfg.pattern, logical_row) == 0) {
            return false;
        }
    }
    return true;
}

std::vector<RowGroup>
RowScout::formCandidateGroups(const std::map<Row, Time> &first_fail,
                              Time t) const
{
    // Eligible rows: failed first in (t/2, t], so they hold for t/2 and
    // fail by t — exactly the side-channel requirement.
    std::set<Row> eligible_phys;
    for (const auto &[logical, fail_t] : first_fail) {
        if (fail_t <= t / 2 || fail_t > t)
            continue;
        if (mapping.isAnomalous(logical))
            continue;
        const Row phys = mapping.toPhysical(logical);
        if (burnedPhys.count(phys))
            continue; // evicted by re-validation; never trust it again
        eligible_phys.insert(phys);
    }

    std::vector<RowGroup> candidates;
    const auto &offsets = cfg.layout.profiledOffsets();
    for (Row base : eligible_phys) {
        bool ok = true;
        for (int off : offsets) {
            if (!eligible_phys.count(base + off)) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;
        // Gap (aggressor) positions must be addressable, in range and
        // not known-remapped.
        for (int gap : cfg.layout.gapOffsets()) {
            const Row gap_logical = mapping.toLogical(base + gap);
            if (gap_logical < cfg.rowStart || gap_logical >= cfg.rowEnd ||
                mapping.isAnomalous(gap_logical)) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;

        RowGroup group;
        group.layout = cfg.layout;
        group.basePhysRow = base;
        group.bank = cfg.bank;
        group.retention = t;
        for (int off : offsets) {
            ProfiledRow row;
            row.bank = cfg.bank;
            row.physRow = base + off;
            row.logicalRow = mapping.toLogical(base + off);
            row.retention = t;
            group.rows.push_back(row);
        }
        candidates.push_back(std::move(group));
    }
    return candidates;
}

std::vector<RowGroup>
RowScout::scout()
{
    // All returned groups must share one retention time T (paper §4.1:
    // "multiple rows that have the same retention times"), so every T
    // escalation restarts group selection from scratch (Fig. 6).
    std::map<Row, Time> first_fail;
    std::vector<RowGroup> best;

    UTRR_PROF_SCOPE_SIM("row_scout.scout", host.clockPtr());
    ScopedTimer timer(host.attachedMetrics(), "row_scout.scout");
    SimPhase phase(&host.trace(), "row_scout",
                   [this] { return host.now(); });
    for (Time t = cfg.initialT; t <= cfg.maxT; t += cfg.stepT) {
        UTRR_DEBUG("row scout: scanning at T = ", nsToMs(t), " ms");
        const std::map<Row, int> failing = scanFailingRows(t);
        for (const auto &[row, flips] : failing) {
            if (!first_fail.count(row))
                first_fail[row] = t;
        }

        std::vector<RowGroup> groups;
        std::set<Row> reserved_phys;
        auto overlaps_reserved = [&](const RowGroup &group) {
            for (int d = -cfg.groupSeparation;
                 d < cfg.layout.span() + cfg.groupSeparation; ++d) {
                if (reserved_phys.count(group.basePhysRow + d))
                    return true;
            }
            return false;
        };

        for (RowGroup &group : formCandidateGroups(first_fail, t)) {
            if (overlaps_reserved(group))
                continue;
            bool consistent = true;
            for (const ProfiledRow &row : group.rows) {
                if (!validateRetention(row.logicalRow, t,
                                       cfg.consistencyChecks)) {
                    consistent = false;
                    UTRR_DEBUG("row ", row.logicalRow,
                               " failed consistency (VRT?)");
                    break;
                }
            }
            if (!consistent)
                continue;
            for (int d = 0; d < cfg.layout.span(); ++d)
                reserved_phys.insert(group.basePhysRow + d);
            groups.push_back(std::move(group));
            if (static_cast<int>(groups.size()) >= cfg.groupCount)
                return revalidateAndReplace(std::move(groups));
        }
        if (groups.size() > best.size())
            best = std::move(groups);
    }

    warn(logFmt("row scout found only ", best.size(), " of ",
                cfg.groupCount, " requested groups (layout ",
                cfg.layout.text(), ")"));
    return revalidateAndReplace(std::move(best));
}

std::vector<RowGroup>
RowScout::scoutReplacements(const std::vector<RowGroup> &existing, Time t,
                            int needed)
{
    // Replacement groups must share the survivors' retention T (paper
    // §4.1), so eligibility is rebuilt at exactly that T: one scan at
    // the hold point marks early failers ineligible, one scan at T
    // marks the rest eligible.
    std::map<Row, Time> first_fail;
    for (const auto &[row, flips] : scanFailingRows(t / 2))
        first_fail[row] = t / 2;
    for (const auto &[row, flips] : scanFailingRows(t)) {
        if (!first_fail.count(row))
            first_fail[row] = t;
    }

    std::set<Row> reserved_phys;
    for (const RowGroup &group : existing) {
        for (int d = 0; d < cfg.layout.span(); ++d)
            reserved_phys.insert(group.basePhysRow + d);
    }
    auto overlaps_reserved = [&](const RowGroup &group) {
        for (int d = -cfg.groupSeparation;
             d < cfg.layout.span() + cfg.groupSeparation; ++d) {
            if (reserved_phys.count(group.basePhysRow + d))
                return true;
        }
        return false;
    };

    std::vector<RowGroup> found;
    for (RowGroup &group : formCandidateGroups(first_fail, t)) {
        if (overlaps_reserved(group))
            continue;
        bool consistent = true;
        for (const ProfiledRow &row : group.rows) {
            if (!validateRetention(row.logicalRow, t,
                                   cfg.consistencyChecks)) {
                consistent = false;
                break;
            }
        }
        if (!consistent)
            continue;
        for (int d = 0; d < cfg.layout.span(); ++d)
            reserved_phys.insert(group.basePhysRow + d);
        found.push_back(std::move(group));
        if (static_cast<int>(found.size()) >= needed)
            break;
    }
    return found;
}

std::vector<RowGroup>
RowScout::revalidateAndReplace(std::vector<RowGroup> groups)
{
    if (cfg.revalidateChecks <= 0)
        return groups;
    UTRR_PROF_SCOPE_SIM("row_scout.revalidate", host.clockPtr());
    ScopedTimer timer(host.attachedMetrics(), "row_scout.revalidate");
    SimPhase phase(&host.trace(), "rs_revalidate",
                   [this] { return host.now(); });

    int eviction_budget = cfg.maxEvictions;
    while (eviction_budget > 0) {
        // Stability pass: every accepted row must still hold for T/2
        // and fail at T. A row that stopped failing (VRT flip to the
        // high-retention mode, upward drift) would make "no flips" an
        // ambiguous signal in the analyzer, so its group is evicted.
        std::size_t i = 0;
        bool evicted_any = false;
        while (i < groups.size() && eviction_budget > 0) {
            RowGroup &group = groups[i];
            bool healthy = true;
            for (const ProfiledRow &row : group.rows) {
                if (!validateRetention(row.logicalRow, group.retention,
                                       cfg.revalidateChecks)) {
                    UTRR_DEBUG("row scout: evicting group at phys ",
                               group.basePhysRow, " (row ",
                               row.logicalRow, " unstable)");
                    healthy = false;
                    break;
                }
            }
            if (healthy) {
                ++i;
                continue;
            }
            for (const ProfiledRow &row : group.rows)
                burnedPhys.insert(row.physRow);
            groups.erase(groups.begin() +
                         static_cast<std::ptrdiff_t>(i));
            ++evictions;
            --eviction_budget;
            evicted_any = true;
            if (MetricsRegistry *m = host.attachedMetrics())
                m->counter("row_scout.evictions").inc();
        }
        if (!evicted_any)
            break;

        const int missing =
            cfg.groupCount - static_cast<int>(groups.size());
        if (missing <= 0 || groups.empty())
            break;
        // Replacements profile at the survivors' shared T; they get the
        // same stability pass on the next loop iteration.
        for (RowGroup &fresh :
             scoutReplacements(groups, groups.front().retention,
                               missing)) {
            groups.push_back(std::move(fresh));
            ++replacements;
            if (MetricsRegistry *m = host.attachedMetrics())
                m->counter("row_scout.replacements").inc();
        }
    }

    if (static_cast<int>(groups.size()) < cfg.groupCount) {
        warn(logFmt("row scout re-validation left ", groups.size(),
                    " of ", cfg.groupCount, " groups after ", evictions,
                    " evictions"));
    }
    return groups;
}

ExperimentReport
RowScout::makeReport(const std::vector<RowGroup> &groups) const
{
    ExperimentReport report("row_scout");
    report.setConfig("bank", Json(static_cast<std::int64_t>(cfg.bank)));
    report.setConfig("row_start",
                     Json(static_cast<std::int64_t>(cfg.rowStart)));
    report.setConfig("row_end",
                     Json(static_cast<std::int64_t>(cfg.rowEnd)));
    report.setConfig("layout", Json(cfg.layout.text()));
    report.setConfig("group_count",
                     Json(static_cast<std::int64_t>(cfg.groupCount)));
    report.setConfig(
        "consistency_checks",
        Json(static_cast<std::int64_t>(cfg.consistencyChecks)));
    report.setSeed(host.module().seed());

    Json found = Json::array();
    for (const RowGroup &group : groups) {
        Json entry = Json::object();
        entry["base_phys_row"] =
            Json(static_cast<std::int64_t>(group.basePhysRow));
        entry["retention_ns"] =
            Json(static_cast<std::int64_t>(group.retention));
        Json rows = Json::array();
        for (const ProfiledRow &row : group.rows)
            rows.push(Json(static_cast<std::int64_t>(row.physRow)));
        entry["profiled_phys_rows"] = std::move(rows);
        found.push(std::move(entry));
    }
    report.setResult("groups", std::move(found));
    report.setResult("groups_found",
                     Json(static_cast<std::uint64_t>(groups.size())));
    report.setResult("validations_run",
                     Json(static_cast<std::uint64_t>(validations)));
    report.setResult("evictions",
                     Json(static_cast<std::uint64_t>(evictions)));
    report.setResult("replacements",
                     Json(static_cast<std::uint64_t>(replacements)));
    return report;
}

} // namespace utrr
