#include "core/device_backend.hh"

#include <stdexcept>

#include "common/logging.hh"
#include "common/rng.hh"

namespace utrr
{

namespace
{

void
fnvMix(std::uint64_t &hash, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (byte * 8)) & 0xff;
        hash *= 0x100000001b3ULL;
    }
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

} // namespace

std::uint64_t
hashBackendReads(const BackendResult &result)
{
    std::uint64_t hash = kFnvOffset;
    for (const BackendRead &read : result.reads) {
        fnvMix(hash, static_cast<std::uint64_t>(read.bank));
        fnvMix(hash, static_cast<std::uint64_t>(read.row));
        fnvMix(hash, static_cast<std::uint64_t>(read.when));
        for (const std::uint64_t word : read.words)
            fnvMix(hash, word);
    }
    return hash;
}

std::uint64_t
programHash(const Program &program)
{
    // Instr::toString covers every field (op, addresses, pattern,
    // word/value, wait) in a stable textual form; hashing it avoids
    // chasing DataPattern internals and stays exact.
    std::uint64_t hash = kFnvOffset;
    for (const Instr &instr : program.instructions())
        fnvMix(hash, hashString(instr.toString()));
    return hash;
}

std::uint64_t
DeviceBackend::snapshot()
{
    throw std::logic_error(name() + " backend does not support snapshots");
}

void
DeviceBackend::restore(std::uint64_t)
{
    throw std::logic_error(name() + " backend does not support snapshots");
}

void
DeviceBackend::dropSnapshot(std::uint64_t)
{
}

BackendRecording
recordExecutions(DeviceBackend &source,
                 const std::vector<Program> &programs)
{
    BackendRecording recording;
    recording.source = source.name();
    recording.spec = source.spec();
    recording.executions.reserve(programs.size());
    for (const Program &program : programs) {
        const std::size_t trace_before = source.traceEvents().size();
        RecordedExecution exec;
        exec.programHash = programHash(program);
        exec.result = source.execute(program);
        exec.accounting = source.accounting();
        std::vector<TraceEvent> after = source.traceEvents();
        if (after.size() > trace_before) {
            exec.trace.assign(after.begin() +
                                  static_cast<std::ptrdiff_t>(trace_before),
                              after.end());
        }
        // Re-home interned phase/fault labels into the recording's own
        // pool; the source backend's pool dies with the source.
        for (TraceEvent &event : exec.trace) {
            if (event.phase == nullptr)
                continue;
            const char *interned = nullptr;
            for (const std::string &known : recording.phaseNames) {
                if (known == event.phase) {
                    interned = known.c_str();
                    break;
                }
            }
            if (interned == nullptr) {
                recording.phaseNames.emplace_back(event.phase);
                interned = recording.phaseNames.back().c_str();
            }
            event.phase = interned;
        }
        recording.executions.push_back(std::move(exec));
    }
    return recording;
}

TraceReplayBackend::TraceReplayBackend(BackendRecording recording)
    : session(std::move(recording)),
      backendName("replay:" +
                  (session.source.empty() ? "unknown" : session.source))
{
}

BackendResult
TraceReplayBackend::execute(const Program &program)
{
    if (cursor >= session.executions.size()) {
        throw std::runtime_error(logFmt(
            "trace replay exhausted: execution ", cursor + 1,
            " requested but the recording holds ",
            session.executions.size()));
    }
    const RecordedExecution &exec = session.executions[cursor];
    const std::uint64_t hash = programHash(program);
    if (hash != exec.programHash) {
        throw std::runtime_error(logFmt(
            "trace replay divergence at execution ", cursor,
            ": submitted program hashes to ", hash,
            " but the recording expects ", exec.programHash));
    }
    ++cursor;
    return exec.result;
}

Time
TraceReplayBackend::now() const
{
    return cursor == 0 ? 0 : session.executions[cursor - 1].result.endTime;
}

BackendAccounting
TraceReplayBackend::accounting() const
{
    if (cursor == 0) {
        BackendAccounting zero;
        zero.rowRefreshes.assign(
            static_cast<std::size_t>(session.spec.banks), 0);
        return zero;
    }
    return session.executions[cursor - 1].accounting;
}

std::vector<TraceEvent>
TraceReplayBackend::traceEvents() const
{
    std::vector<TraceEvent> out;
    for (std::size_t i = 0; i < cursor; ++i) {
        const std::vector<TraceEvent> &slice =
            session.executions[i].trace;
        out.insert(out.end(), slice.begin(), slice.end());
    }
    return out;
}

std::uint64_t
TraceReplayBackend::snapshot()
{
    return static_cast<std::uint64_t>(cursor);
}

void
TraceReplayBackend::restore(std::uint64_t token)
{
    if (token > session.executions.size())
        throw std::out_of_range(
            logFmt("replay snapshot token ", token, " out of range"));
    cursor = static_cast<std::size_t>(token);
}

} // namespace utrr
