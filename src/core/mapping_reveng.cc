#include "core/mapping_reveng.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace utrr
{

DiscoveredMapping::DiscoveredMapping(RowScramble scheme, Row rows,
                                     std::set<Row> anomalies)
    : scrambleScheme(scheme), rowCount(rows),
      anomalousRows(std::move(anomalies))
{
}

DiscoveredMapping
DiscoveredMapping::identity(Row rows)
{
    return DiscoveredMapping(RowScramble::kSequential, rows);
}

Row
DiscoveredMapping::toPhysical(Row logical) const
{
    return applyScramble(scrambleScheme, logical);
}

Row
DiscoveredMapping::toLogical(Row physical) const
{
    // All modelled schemes are involutions.
    return applyScramble(scrambleScheme, physical);
}

MappingReveng::MappingReveng(SoftMcHost &host, Config config)
    : host(host), cfg(config)
{
}

MappingReveng::ProbeResult
MappingReveng::probe(Row logical_row)
{
    const Bank bank = cfg.bank;
    ProbeResult result;
    result.probeRow = logical_row;

    // Surround the probe with a known pattern; the probe row stores the
    // inverse to maximize disturbance coupling.
    const DataPattern victim_pattern = DataPattern::allOnes();
    const DataPattern aggressor_pattern = DataPattern::allZeros();

    int hammers = cfg.hammersStart;
    while (hammers <= cfg.hammersMax) {
        for (Row r = logical_row - cfg.windowRadius;
             r <= logical_row + cfg.windowRadius; ++r) {
            if (r < 0)
                continue;
            host.writeRow(bank, r,
                          r == logical_row ? aggressor_pattern
                                           : victim_pattern);
        }
        host.hammer(bank, logical_row, hammers);

        result.flippedNeighbours.clear();
        for (Row r = logical_row - cfg.windowRadius;
             r <= logical_row + cfg.windowRadius; ++r) {
            if (r < 0 || r == logical_row)
                continue;
            const RowReadout readout = host.readRow(bank, r);
            if (readout.countFlipsVs(victim_pattern, r) > 0)
                result.flippedNeighbours.push_back(r);
        }
        // Keep escalating until both direct neighbours have flipped
        // (their thresholds differ row to row); settle for one if the
        // budget runs out.
        if (result.flippedNeighbours.size() >= 2 ||
            (!result.flippedNeighbours.empty() &&
             hammers * 2 > cfg.hammersMax)) {
            result.hammersUsed = hammers;
            return result;
        }
        hammers *= 2;
    }
    result.hammersUsed = 0; // nothing flipped: likely remapped
    return result;
}

double
MappingReveng::scoreScheme(RowScramble scheme,
                           const std::vector<ProbeResult> &results) const
{
    int matched = 0;
    int considered = 0;
    for (const ProbeResult &r : results) {
        if (r.flippedNeighbours.empty())
            continue; // anomalies don't vote
        ++considered;
        // Predicted strongest victims: logical rows whose physical
        // location is adjacent to the probe's physical location.
        const Row phys = applyScramble(scheme, r.probeRow);
        std::vector<Row> predicted;
        for (Row p : {phys - 1, phys + 1}) {
            if (p >= 0)
                predicted.push_back(applyScramble(scheme, p));
        }
        // The observed set must contain every prediction that falls
        // within the probe window (distance-2 extras are tolerated).
        bool ok = true;
        for (Row p : predicted) {
            if (std::abs(p - r.probeRow) > cfg.windowRadius)
                continue;
            if (std::find(r.flippedNeighbours.begin(),
                          r.flippedNeighbours.end(),
                          p) == r.flippedNeighbours.end()) {
                ok = false;
                break;
            }
        }
        if (ok)
            ++matched;
    }
    if (considered == 0)
        return 0.0;
    return static_cast<double>(matched) /
        static_cast<double>(considered);
}

DiscoveredMapping
MappingReveng::discover()
{
    const Row rows = host.module().spec().rowsPerBank;

    std::vector<ProbeResult> results;
    std::set<Row> anomalies;
    for (int i = 0; i < cfg.probes; ++i) {
        Row r = cfg.probeStart + static_cast<Row>(i) * cfg.probeStride;
        if (r >= rows - cfg.windowRadius)
            r = r % (rows - 2 * cfg.windowRadius) + cfg.windowRadius;
        ProbeResult result = probe(r);
        if (result.flippedNeighbours.empty()) {
            anomalies.insert(r);
            inform(logFmt("mapping probe row ", r,
                          " produced no flips; flagged as remapped"));
        }
        results.push_back(std::move(result));
    }

    constexpr std::array<RowScramble, 3> kSchemes = {
        RowScramble::kSequential,
        RowScramble::kSwapHalfPairs,
        RowScramble::kBitSwap01,
    };
    RowScramble best = RowScramble::kSequential;
    double best_score = -1.0;
    for (RowScramble scheme : kSchemes) {
        const double score = scoreScheme(scheme, results);
        UTRR_DEBUG("scheme ", scrambleName(scheme), " score ", score);
        if (score > best_score) {
            best_score = score;
            best = scheme;
        }
    }
    inform(logFmt("discovered row scramble: ", scrambleName(best),
                  " (score ", best_score, ")"));
    return DiscoveredMapping(best, rows, std::move(anomalies));
}

} // namespace utrr
