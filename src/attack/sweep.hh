/**
 * @file
 * Bank-sweep harness for attack evaluation (paper §7.2-§7.3).
 *
 * The paper sweeps aggressor positions across a whole DRAM bank and
 * reports per-row flip distributions (Fig. 8), the fraction of
 * vulnerable rows (Fig. 9, Table 1) and per-8-byte-word flip counts
 * (Fig. 10). A full sweep of a 64K-row bank takes hours even on real
 * hardware; the harness samples a configurable number of uniformly
 * spread victim positions (use positions >= rowsPerBank for the
 * paper's full sweep).
 */

#ifndef UTRR_ATTACK_SWEEP_HH
#define UTRR_ATTACK_SWEEP_HH

#include "attack/evaluator.hh"
#include "attack/pattern.hh"
#include "common/stats.hh"
#include "core/reveng.hh"
#include "dram/module_spec.hh"

namespace utrr
{

/** Sweep configuration. */
struct SweepConfig
{
    Bank bank = 0;
    /** Victim anchor positions sampled across the bank. */
    int positions = 64;
    /**
     * REF intervals each position runs for; 0 selects one full
     * regular-refresh sweep (the victim's maximum unrefreshed window).
     */
    int windowRefs = 0;
    /**
     * Aggressor hammers knob (semantics per vendor, see
     * CustomPatternParams::aggressorHammers); 0 selects the vendor
     * default.
     */
    int aggressorHammers = 0;
};

/** Aggregated sweep statistics. */
struct SweepResult
{
    int positionsTested = 0;
    int victimRowsTested = 0;
    int vulnerableRows = 0;
    /** Flips per victim row (box-plot input, Fig. 8). */
    std::vector<double> flipsPerRow;
    /** Flips per 8-byte word across all victims (Fig. 10). */
    Histogram wordFlips;
    int maxRowFlips = 0;
    /** Normalized x-axis of Fig. 8. */
    double hammersPerAggrPerRef = 0.0;

    double
    vulnerableFraction() const
    {
        return victimRowsTested == 0
            ? 0.0
            : static_cast<double>(vulnerableRows) /
                static_cast<double>(victimRowsTested);
    }

    /** Table 1's "Max. Bit Flips per Row per Hammer" column. */
    double
    maxFlipsPerRowPerHammer() const
    {
        return hammersPerAggrPerRef == 0.0
            ? 0.0
            : static_cast<double>(maxRowFlips) / hammersPerAggrPerRef;
    }
};

/**
 * Default custom-pattern parameters for a module, as the paper derives
 * them per vendor in §7.1 (24 hammers/aggressor for A, 220 per window
 * for B, window-filling burst for C).
 */
CustomPatternParams defaultCustomParams(const ModuleSpec &spec);

/** Custom-pattern parameters from a reverse-engineered profile. */
CustomPatternParams customParamsFromProfile(char vendor,
                                            const TrrProfile &profile,
                                            bool paired);

/** Sweep the U-TRR custom pattern over sampled victim positions. */
SweepResult sweepCustomPattern(SoftMcHost &host,
                               const DiscoveredMapping &mapping,
                               const CustomPatternParams &params,
                               const SweepConfig &config);

/** Baseline pattern families for comparison sweeps. */
enum class BaselineKind
{
    kSingleSided,
    kDoubleSided,
    kManySided9, // TRRespass-style 9-sided
    kManySided19,
};

std::string baselineName(BaselineKind kind);

/** Sweep a baseline pattern over sampled victim positions. */
SweepResult sweepBaseline(SoftMcHost &host,
                          const DiscoveredMapping &mapping,
                          BaselineKind kind, const SweepConfig &config);

} // namespace utrr

#endif // UTRR_ATTACK_SWEEP_HH
