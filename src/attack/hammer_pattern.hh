/**
 * @file
 * Non-uniform RowHammer pattern representation (Blacksmith-style).
 *
 * TRRespass-style uniform patterns hammer every aggressor equally in
 * every REF-to-REF slot; the samplers the paper reverse-engineers (§6)
 * all catch that shape. Blacksmith showed that giving each aggressor
 * group its own *frequency*, *phase* and *amplitude* relative to the
 * refresh cadence defeats far more in-DRAM trackers. This file is our
 * version of that abstraction, specialized to the REF-synchronized
 * slot structure of the U-TRR methodology:
 *
 *  - A HammerPattern is a base period (in REF slots) plus an ordered
 *    list of PatternElements. Element order is emission order inside a
 *    slot, so "dummy burst first, then aggressors" is representable.
 *  - A PatternElement is either the aggressor group or a dummy-row
 *    group, active in slot s of the period when
 *        pos >= phase && (pos - phase) % frequency < span
 *    with pos = s % basePeriod; its amplitude is ACTs per row per
 *    active slot (0 = fill whatever budget the slot has left).
 *  - Dummy elements may fan out over several banks: banks > 1 lowers
 *    to hammerMultiBank rounds that fill the remaining *time* of the
 *    slot (bank-parallel ACTs are cheaper per own-bank ACT, exactly
 *    the trick VendorBPattern uses to feed a chip-wide sampler).
 *
 * The representation is pure data: planSlot() computes, with integer
 * arithmetic only, which bursts a slot issues, and both the live
 * AccessPattern adapter (SynthesizedPattern) and the softmc::Program
 * lowering (lowerToProgram) consume that one plan. Same pattern, same
 * timing -> same command stream, which is the determinism surface
 * tests/test_synth.cc pins.
 */

#ifndef UTRR_ATTACK_HAMMER_PATTERN_HH
#define UTRR_ATTACK_HAMMER_PATTERN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "attack/pattern.hh"
#include "core/mapping_reveng.hh"
#include "dram/module_spec.hh"
#include "dram/timing.hh"
#include "softmc/command.hh"

namespace utrr
{

/** What a pattern element activates. */
enum class ElementKind
{
    kAggressors, // the rows adjacent to the victim
    kDummies,    // far-away decoy rows fed to the TRR sampler
};

/**
 * One access group of a non-uniform pattern. The zenhammer
 * AggressorAccessPattern equivalent, quantized to REF slots.
 */
struct PatternElement
{
    ElementKind kind = ElementKind::kAggressors;

    /** Aggressors: 1 (single-sided) or 2 (double-sided). Dummies:
     *  distinct decoy rows cycled through (1..16). */
    int rows = 2;

    /** Dummies only: parallel banks (1 = same-bank ACTs, >1 =
     *  hammerMultiBank rounds). Aggressors always use 1. */
    int banks = 1;

    /** Slots between activation bursts within the base period. */
    int frequency = 1;

    /** First active slot of the base period. */
    int phase = 0;

    /** Consecutive active slots per burst. */
    int span = 1;

    /** ACTs per row per active slot; 0 = fill the remaining slot
     *  budget (ACT budget for same-bank groups, time for multi-bank
     *  groups). */
    int amplitude = 0;
};

/** A complete non-uniform pattern. */
struct HammerPattern
{
    /** Pattern length in REF slots; slot s maps to s % basePeriod. */
    int basePeriod = 1;

    /** Emission order inside a slot = vector order. */
    std::vector<PatternElement> elements;

    /** Is @p element active in @p slot? */
    bool activeAt(const PatternElement &element,
                  std::uint64_t slot) const;

    /** Max aggressor rows over aggressor elements (1 or 2). */
    int aggressorRowCount() const;

    /** Max dummy rows / banks over dummy elements (0 if none). */
    int dummyRowCount() const;
    int dummyBankCount() const;
};

/** Hard bounds of the representation (shared by drawPattern and the
 *  validator so the property tests can pin them). */
struct PatternLimits
{
    static constexpr int kMaxBasePeriod = 64;
    static constexpr int kMaxAggressorRows = 2;
    static constexpr int kMaxDummyRows = 16;
    static constexpr int kMaxDummyBanks = 4;
    static constexpr int kMaxElements = 6;
    static constexpr int kMaxAmplitude = 160;
};

/**
 * Structural validation. Returns "" when @p pattern is well-formed,
 * else a one-line description of the first problem (phase within the
 * period, span/frequency positive, at least one aggressor element,
 * limits respected, ...).
 */
std::string validatePattern(const HammerPattern &pattern);

/**
 * Classify a pattern for the bypass table. One of:
 *  - "uniform":     aggressors only, active every slot
 *  - "window-fill": dummy burst precedes the aggressor phase (the
 *                   vendor-C candidate-window shape)
 *  - "early-aggr":  aggressors confined to a prefix of the period,
 *                   dummies elsewhere (the vendor-B sampler shape)
 *  - "decoy-evict": aggressors + dummies share every slot (the
 *                   vendor-A counter-eviction shape)
 */
std::string patternClass(const HammerPattern &pattern);

/** Render to the "#"-commented key=value text format (corpus-style). */
std::string serializeHammerPattern(const HammerPattern &pattern);

/**
 * Parse the text format. Returns "" and fills @p out on success, else
 * an error message. Round-trips with serializeHammerPattern().
 */
std::string parseHammerPattern(const std::string &text,
                               HammerPattern &out);

// --- binding to a concrete module ------------------------------------

/**
 * Concrete rows for one (bank, victim) placement of a pattern.
 * Aggressors are the victim's neighbours (or its remap pair partners
 * on paired-row modules); dummies are far rows that can never disturb
 * the victim themselves.
 */
struct PatternBinding
{
    Bank bank = 0;
    /** Victim position in physical (geometric) row order. */
    Row victimPhys = 0;
    /** Aggressor rows, logical (1 or 2). */
    std::vector<Row> aggressors;
    /** Decoy rows, logical; sized to the pattern's dummyRowCount(). */
    std::vector<Row> dummies;
    /** Banks for multi-bank dummy rounds; [0] is the victim's bank. */
    std::vector<Bank> dummyBanks;
};

/** Bind @p pattern around physical victim row @p victim_phys. */
PatternBinding bindPattern(const HammerPattern &pattern,
                           const ModuleSpec &spec,
                           const DiscoveredMapping &mapping, Bank bank,
                           Row victim_phys);

/**
 * The (bank, logical row) victims this binding attacks: the victim
 * itself, plus — on paired-row modules with double-sided aggressors —
 * the second pair victim at victim_phys + 2.
 */
std::vector<std::pair<Bank, Row>>
patternVictims(const HammerPattern &pattern, const ModuleSpec &spec,
               const DiscoveredMapping &mapping, Bank bank,
               Row victim_phys);

// --- slot planning ----------------------------------------------------

/** One planned burst of a slot. */
struct BurstPlan
{
    /** Index into HammerPattern::elements. */
    std::size_t element = 0;
    /** Same-bank bursts: ACTs per row. */
    int hammersPerRow = 0;
    /** Multi-bank bursts: hammerMultiBank rounds. */
    int rounds = 0;
};

/** Deterministic plan of one slot. */
struct SlotPlan
{
    std::vector<BurstPlan> bursts;
    /** ACTs the plan issues in the victim's bank. */
    int actsOwnBank = 0;
    /** Slot time the plan consumes (host cost model). */
    Time timePlanned = 0;
};

/**
 * Plan slot @p slot of @p pattern under @p timing. Pure integer
 * arithmetic over the host's published cost model (hammerCycle per
 * same-bank ACT, max(hammerCycle, banks*tFAW/4) per multi-bank round),
 * so the plan — and everything emitted from it — is a deterministic
 * function of (pattern, slot, timing).
 */
SlotPlan planSlot(const HammerPattern &pattern, std::uint64_t slot,
                  const Timing &timing);

/**
 * planSlot() into a caller-owned plan, reusing its burst-vector
 * capacity — the allocation-free form for per-slot hot loops.
 */
void planSlotInto(const HammerPattern &pattern, std::uint64_t slot,
                  const Timing &timing, SlotPlan &plan);

/**
 * Lower @p slots slots of a bound pattern to a softmc::Program: per
 * slot the planned ACT/PRE bursts, a wait() pad up to the slot budget
 * (tREFI - tRFC), and one REF. The canonical compiled form used for
 * corpus anchors and the determinism/TimingChecker tests. Multi-bank
 * rounds lower to round-robin ACT/PRE across the banks, truncated to
 * what fits the slot at the ISA's *serial* cost (the program form has
 * no bank-parallel primitive, so it carries fewer fill ACTs than the
 * live adapter while keeping the identical aggressor stream and REF
 * cadence).
 */
Program lowerToProgram(const HammerPattern &pattern,
                       const PatternBinding &binding,
                       const Timing &timing, int slots);

/**
 * Live AccessPattern adapter: drives a SoftMcHost through the same
 * slot plans lowerToProgram compiles, via the immediate host API
 * (hammer / hammerInterleaved / hammerMultiBank), which is what
 * AttackEvaluator::run() executes.
 */
class SynthesizedPattern : public AccessPattern
{
  public:
    SynthesizedPattern(HammerPattern pattern, PatternBinding binding,
                       const Timing &timing);

    std::string name() const override;
    void runSlot(SoftMcHost &host, std::uint64_t slot) override;
    std::vector<std::pair<Bank, Row>> aggressorRows() const override;

    const HammerPattern &pattern() const { return pat; }
    const PatternBinding &binding() const { return bind; }

  private:
    HammerPattern pat;
    PatternBinding bind;
    Timing timing;
    /** Per-slot scratch, reused so the hot loop stays allocation-free
     *  after the first slot (capacity persists across runSlot calls). */
    SlotPlan slotScratch;
    std::vector<std::pair<Bank, Row>> rowScratch;
    std::vector<int> countScratch;
};

} // namespace utrr

#endif // UTRR_ATTACK_HAMMER_PATTERN_HH
