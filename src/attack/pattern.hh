/**
 * @file
 * RowHammer access patterns (paper §2.3, §7.1).
 *
 * A pattern emits DDR commands for one REF interval ("slot") at a time;
 * the AttackEvaluator issues a REF at the end of every slot, exactly
 * like the paper's SoftMC programs, which comply with the default
 * 7.8 us refresh rate while hammering. Slots are synchronized with
 * TRR-capable REFs (the evaluator aligns slot 0 to a TRR event, the
 * stand-in for the timing-channel synchronization of SMASH [19] the
 * paper relies on), so patterns can place their hammers relative to the
 * TRR window:
 *
 *  - vendor A (§7.1): hammer both aggressors a few tens of times per
 *    slot, then hammer 16 dummy rows so the freshly (re)inserted,
 *    low-count aggressor entries are evicted from the counter table
 *    before every TRR-capable REF;
 *  - vendor B: hammer the aggressors right after a TRR-capable REF and
 *    fill the rest of the window with dummy-row activations (in four
 *    banks, tFAW-bound) so the sampler almost surely holds a dummy when
 *    the next TRR-capable REF arrives;
 *  - vendor C: fill the detection window (the first ~2K ACTs after a
 *    TRR event) with dummy activations, then hammer the aggressors
 *    unobserved until the next TRR event.
 */

#ifndef UTRR_ATTACK_PATTERN_HH
#define UTRR_ATTACK_PATTERN_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "core/mapping_reveng.hh"
#include "softmc/host.hh"

namespace utrr
{

/**
 * A REF-synchronized RowHammer access pattern.
 */
class AccessPattern
{
  public:
    virtual ~AccessPattern() = default;

    /** Pattern name for tables and logs. */
    virtual std::string name() const = 0;

    /** Called once when the evaluator starts running the pattern. */
    virtual void begin(SoftMcHost &) {}

    /** Emit the commands of one REF interval. */
    virtual void runSlot(SoftMcHost &host, std::uint64_t slot) = 0;

    /** Aggressor rows (bank, logical) that need data initialization. */
    virtual std::vector<std::pair<Bank, Row>> aggressorRows() const = 0;
};

/** Classic single-sided RowHammer (Fig. 2a). */
class SingleSidedPattern : public AccessPattern
{
  public:
    SingleSidedPattern(Bank bank, Row aggressor_logical,
                       int hammers_per_slot);

    std::string name() const override { return "single-sided"; }
    void runSlot(SoftMcHost &host, std::uint64_t slot) override;
    std::vector<std::pair<Bank, Row>> aggressorRows() const override;

  private:
    Bank bank;
    Row aggressor;
    int hammers;
};

/** Classic double-sided RowHammer (Fig. 2b). */
class DoubleSidedPattern : public AccessPattern
{
  public:
    DoubleSidedPattern(Bank bank, Row aggr0_logical, Row aggr1_logical,
                       int hammers_per_aggr_per_slot);

    std::string name() const override { return "double-sided"; }
    void runSlot(SoftMcHost &host, std::uint64_t slot) override;
    std::vector<std::pair<Bank, Row>> aggressorRows() const override;

  private:
    Bank bank;
    Row aggr0;
    Row aggr1;
    int hammers;
};

/** TRRespass-style many-sided hammering (the state-of-the-art
 *  baseline [24]). */
class ManySidedPattern : public AccessPattern
{
  public:
    ManySidedPattern(Bank bank, std::vector<Row> aggressors_logical,
                     int hammers_per_aggr_per_slot);

    std::string name() const override;
    void runSlot(SoftMcHost &host, std::uint64_t slot) override;
    std::vector<std::pair<Bank, Row>> aggressorRows() const override;

  private:
    Bank bank;
    std::vector<Row> aggressors;
    int hammers;
};

/**
 * Parameters of the U-TRR custom patterns, normally taken from a
 * reverse-engineered TrrProfile.
 */
struct CustomPatternParams
{
    /** 'A', 'B' or 'C' (selects the evasion strategy). */
    char vendor = 'A';
    /** Discovered TRR-to-REF period. */
    int trrPeriod = 9;
    /**
     * Aggressor hammers: per aggressor per slot (vendor A) or per
     * aggressor per TRR window (vendors B and C).
     */
    int aggressorHammers = 24;
    /** Vendor A: number of dummy rows used to evict the aggressors. */
    int dummyCount = 16;
    /** Vendor B: dummy banks hammered in parallel (tFAW-bound). */
    int dummyBanks = 4;
    /** Vendor B: per-bank detection (B_TRR3) — dummy in the same bank. */
    bool perBankSampler = false;
    /** Vendor C: discovered detection-window length in ACTs. */
    int windowActs = 2'048;
    /** Paired-row modules (C0-8): aggressors are the pair rows. */
    bool paired = false;
};

/** Vendor A custom pattern (§7.1). */
class VendorAPattern : public AccessPattern
{
  public:
    VendorAPattern(Bank bank, Row aggr0, Row aggr1,
                   std::vector<Row> dummies, int hammers_per_aggr,
                   Timing timing);

    std::string name() const override { return "utrr-A"; }
    void runSlot(SoftMcHost &host, std::uint64_t slot) override;
    std::vector<std::pair<Bank, Row>> aggressorRows() const override;

  private:
    Bank bank;
    Row aggr0;
    Row aggr1;
    std::vector<Row> dummies;
    int aggrHammers;
    int dummyHammers;
};

/** Vendor B custom pattern (§7.1). */
class VendorBPattern : public AccessPattern
{
  public:
    /**
     * @param dummy_rows (bank, logical) dummy rows hammered in parallel
     *        after the aggressors within each TRR window
     */
    VendorBPattern(Bank bank, Row aggr0, Row aggr1,
                   std::vector<std::pair<Bank, Row>> dummy_rows,
                   int hammers_per_aggr_per_window, int trr_period,
                   Timing timing);

    std::string name() const override { return "utrr-B"; }
    void begin(SoftMcHost &host) override;
    void runSlot(SoftMcHost &host, std::uint64_t slot) override;
    std::vector<std::pair<Bank, Row>> aggressorRows() const override;

  private:
    Bank bank;
    Row aggr0;
    Row aggr1;
    std::vector<std::pair<Bank, Row>> dummyRows;
    int aggrPerWindow;
    int trrPeriod;
    Timing timing;
    int aggrLeftInWindow = 0;
};

/** Vendor C custom pattern (§7.1). */
class VendorCPattern : public AccessPattern
{
  public:
    VendorCPattern(Bank bank, Row aggr0, Row aggr1, Row dummy,
                   int window_acts, int trr_period, Timing timing);

    std::string name() const override { return "utrr-C"; }
    void begin(SoftMcHost &host) override;
    void runSlot(SoftMcHost &host, std::uint64_t slot) override;
    std::vector<std::pair<Bank, Row>> aggressorRows() const override;

  private:
    Bank bank;
    Row aggr0;
    Row aggr1;
    Row dummy;
    int windowActs;
    int trrPeriod;
    Timing timing;
    int burstLeftInWindow = 0;
};

/**
 * Build the U-TRR custom pattern for a victim row using the discovered
 * TRR parameters.
 *
 * @param victim_phys the anchor victim (physical); aggressors are its
 *        physical neighbours (or pair rows for paired modules)
 */
std::unique_ptr<AccessPattern> makeCustomPattern(
    const CustomPatternParams &params, SoftMcHost &host,
    const DiscoveredMapping &mapping, Bank bank, Row victim_phys);

/** Victim (logical) rows a custom pattern at @p victim_phys targets. */
std::vector<Row> customPatternVictims(const CustomPatternParams &params,
                                      const DiscoveredMapping &mapping,
                                      Row victim_phys);

} // namespace utrr

#endif // UTRR_ATTACK_PATTERN_HH
