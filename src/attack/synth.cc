#include "attack/synth.hh"

#include <algorithm>
#include <climits>
#include <map>
#include <set>
#include <sstream>

#include "attack/evaluator.hh"
#include "check/minimizer.hh"
#include "common/logging.hh"
#include "obs/profiler.hh"
#include "softmc/host.hh"

namespace utrr
{

namespace
{

/** Periods the modelled TRR mechanisms actually use; draws favour
 *  these over a blind uniform period. */
constexpr int kLikelyPeriods[] = {2, 4, 8, 9, 16, 17};

int
clampInt(int value, int lo, int hi)
{
    return std::max(lo, std::min(value, hi));
}

int
drawBasePeriod(Rng &rng, const SynthRanges &ranges, int hint)
{
    const double pick = rng.uniform();
    int period;
    if (hint > 0 && pick < 0.6) {
        period = hint;
    } else if (pick < 0.85) {
        period = kLikelyPeriods[rng.uniformInt(
            0, std::size(kLikelyPeriods) - 1)];
    } else {
        period = static_cast<int>(rng.uniformInt(
            ranges.minBasePeriod, ranges.maxBasePeriod));
    }
    return clampInt(period, ranges.minBasePeriod,
                    ranges.maxBasePeriod);
}

/**
 * Deterministic insight-seeded candidates, tried before any random
 * draw. This is the paper's §7.1 move folded into the search: the
 * reverse-engineered mechanism class dictates a counter-shape (decoy
 * eviction for the vendor-A counter table, early-aggressor +
 * multi-bank sampler feed for vendor B, window-fill for vendor C), so
 * the known shape family goes first and the fuzzer only has to find
 * what insight alone cannot. Clamped into @p ranges so every candidate
 * obeys the same bounds as drawPattern's output.
 */
std::vector<HammerPattern>
insightCandidates(const ModuleSpec &spec, const SynthRanges &ranges,
                  int hint)
{
    std::vector<HammerPattern> out;
    const int period =
        clampInt(std::max(2, hint), 2, ranges.maxBasePeriod);

    if (spec.vendor == 'A') {
        // Decoy-evict at three aggressor amplitudes around the §7.1
        // operating point (24 per aggressor per REF).
        for (const int amp : {24, 40, 16}) {
            HammerPattern p;
            p.basePeriod = 1;
            PatternElement aggr;
            aggr.kind = ElementKind::kAggressors;
            aggr.rows = 2;
            aggr.amplitude = clampInt(amp, 1, ranges.maxAmplitude);
            PatternElement decoys;
            decoys.kind = ElementKind::kDummies;
            decoys.rows = clampInt(16, 1, ranges.maxDummyRows);
            decoys.amplitude = 0; // fill
            p.elements = {aggr, decoys};
            out.push_back(p);
        }
    } else if (spec.vendor == 'B') {
        // Early-aggr: aggressors own a prefix of the TRR window, then
        // multi-bank (or, for the per-bank B_TRR3 sampler, same-bank)
        // dummies divert the sampler for the rest of it.
        for (const int banks : {4, 1}) {
            for (const int aspan : {std::max(1, period / 2), 1}) {
                HammerPattern p;
                p.basePeriod = period;
                PatternElement aggr;
                aggr.kind = ElementKind::kAggressors;
                aggr.rows = 2;
                aggr.frequency = period;
                aggr.span = aspan;
                aggr.amplitude = 0;
                PatternElement fill;
                fill.kind = ElementKind::kDummies;
                fill.rows = clampInt(4, 1, ranges.maxDummyRows);
                fill.banks = clampInt(banks, 1, ranges.maxDummyBanks);
                fill.frequency = period;
                fill.phase = aspan;
                fill.span = period - aspan;
                fill.amplitude = 0;
                p.elements = {aggr, fill};
                if (validatePattern(p).empty())
                    out.push_back(p);
            }
        }
    } else {
        // Window-fill: a dummy burst captures the detection window's
        // candidate slot(s), then the aggressors hammer unobserved.
        for (const int prefix : {1, 2, std::max(1, period / 2)}) {
            if (prefix >= period)
                continue;
            HammerPattern p;
            p.basePeriod = period;
            PatternElement burst;
            burst.kind = ElementKind::kDummies;
            burst.rows = clampInt(2, 1, ranges.maxDummyRows);
            burst.frequency = period;
            burst.span = prefix;
            burst.amplitude = 0;
            PatternElement aggr;
            aggr.kind = ElementKind::kAggressors;
            aggr.rows = 2;
            aggr.frequency = period;
            aggr.phase = prefix;
            aggr.span = period - prefix;
            aggr.amplitude = 0;
            p.elements = {burst, aggr};
            if (validatePattern(p).empty())
                out.push_back(p);
        }
    }

    // Small periods collapse span/prefix variants onto each other;
    // keep the first of each distinct shape.
    std::set<std::string> seen;
    std::vector<HammerPattern> unique;
    for (const HammerPattern &p : out)
        if (seen.insert(serializeHammerPattern(p)).second)
            unique.push_back(p);
    return unique;
}

/** Aggressor ACTs per aggressor row per base period — the bypass
 *  table's hammer-budget column. */
int
aggressorHammersPerPeriod(const HammerPattern &pattern,
                          const Timing &timing)
{
    int total = 0;
    for (int slot = 0; slot < pattern.basePeriod; ++slot) {
        const SlotPlan plan =
            planSlot(pattern, static_cast<std::uint64_t>(slot), timing);
        for (const BurstPlan &burst : plan.bursts) {
            if (pattern.elements[burst.element].kind ==
                ElementKind::kAggressors)
                total += burst.hammersPerRow;
        }
    }
    return total;
}

} // namespace

HammerPattern
drawPattern(Rng &rng, const SynthRanges &ranges, int trr_period_hint)
{
    HammerPattern pattern;
    // Family weights: the decoy/early/window shapes are each the known
    // counter-move against one mechanism family (§7.1); uniform is the
    // TRRespass control arm.
    const int family = static_cast<int>(rng.uniformInt(0, 7));
    pattern.basePeriod = drawBasePeriod(rng, ranges, trr_period_hint);

    const auto drawAmplitude = [&](int lo, int hi) {
        lo = clampInt(lo, 1, ranges.maxAmplitude);
        hi = clampInt(hi, lo, ranges.maxAmplitude);
        return static_cast<int>(rng.uniformInt(lo, hi));
    };

    if (family == 0) {
        // Uniform: aggressors every slot, the TRRespass shape.
        PatternElement aggr;
        aggr.kind = ElementKind::kAggressors;
        aggr.rows = static_cast<int>(rng.uniformInt(1, 2));
        aggr.frequency = 1;
        aggr.span = 1;
        aggr.amplitude = rng.chance(0.5)
            ? 0
            : drawAmplitude(ranges.minAmplitude, ranges.maxAmplitude);
        pattern.elements.push_back(aggr);
    } else if (family <= 2) {
        // Decoy-evict: low-amplitude aggressors plus a large same-bank
        // decoy set in every slot (floods a counter table until the
        // aggressor entries evict).
        PatternElement aggr;
        aggr.kind = ElementKind::kAggressors;
        aggr.rows = static_cast<int>(rng.uniformInt(1, 2));
        aggr.frequency = 1;
        aggr.span = 1;
        aggr.amplitude =
            drawAmplitude(ranges.minAmplitude,
                          std::min(48, ranges.maxAmplitude));
        PatternElement decoys;
        decoys.kind = ElementKind::kDummies;
        decoys.rows = static_cast<int>(
            rng.uniformInt(6, std::max(6, ranges.maxDummyRows)));
        decoys.frequency = 1;
        decoys.span = 1;
        decoys.amplitude = 0; // fill
        pattern.elements.push_back(aggr);
        pattern.elements.push_back(decoys);
    } else if (family <= 4) {
        // Early-aggr: aggressors confined to a prefix of the period,
        // dummy fill elsewhere (starves a sampler of aggressor ACTs in
        // the slots it samples from).
        const int period = std::max(pattern.basePeriod, 2);
        pattern.basePeriod = period;
        PatternElement aggr;
        aggr.kind = ElementKind::kAggressors;
        aggr.rows = static_cast<int>(rng.uniformInt(1, 2));
        aggr.frequency = period;
        aggr.span = static_cast<int>(
            rng.uniformInt(1, std::max(1, period / 2)));
        aggr.amplitude = rng.chance(0.5)
            ? 0
            : drawAmplitude(ranges.minAmplitude, ranges.maxAmplitude);
        PatternElement fill;
        fill.kind = ElementKind::kDummies;
        fill.rows = static_cast<int>(rng.uniformInt(1, 4));
        const int bank_pick = static_cast<int>(rng.uniformInt(0, 2));
        fill.banks =
            std::min(1 << bank_pick, ranges.maxDummyBanks);
        fill.frequency = 1;
        fill.span = period;
        fill.amplitude = 0; // fill the remaining slot time
        pattern.elements.push_back(aggr);
        pattern.elements.push_back(fill);
    } else {
        // Window-fill: a dummy burst owns the first slots of the
        // period (captures a detection window's candidate), then the
        // aggressors hammer unobserved.
        const int period = std::max(pattern.basePeriod, 2);
        pattern.basePeriod = period;
        const int prefix =
            static_cast<int>(rng.uniformInt(1, period - 1));
        PatternElement burst;
        burst.kind = ElementKind::kDummies;
        burst.rows = static_cast<int>(rng.uniformInt(1, 4));
        burst.frequency = period;
        burst.span = prefix;
        burst.amplitude = 0;
        PatternElement aggr;
        aggr.kind = ElementKind::kAggressors;
        aggr.rows = static_cast<int>(rng.uniformInt(1, 2));
        aggr.frequency = period;
        aggr.phase = prefix;
        aggr.span = period - prefix;
        aggr.amplitude = 0;
        pattern.elements.push_back(burst);
        pattern.elements.push_back(aggr);
    }

    UTRR_ASSERT(validatePattern(pattern).empty(),
                "drawPattern produced an invalid pattern");
    return pattern;
}

PatternEval
evaluatePattern(const ModuleSpec &spec, const SynthConfig &cfg,
                const HammerPattern &pattern, Bank bank, Row anchor,
                const std::atomic<bool> *stop)
{
    // Fresh substrate per evaluation: the result is a pure function of
    // (spec, moduleSeed, pattern, bank, anchor, window), never of what
    // an earlier candidate hammered.
    DramModule module(spec, cfg.moduleSeed);
    SoftMcHost host(module);
    host.attachStopFlag(stop);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);

    AttackEvaluator evaluator(host);

    // Warm up the mitigation into its sweep steady state: run the same
    // pattern at the diametrically opposite anchor first, exactly as a
    // prior position of a multi-position sweep would have. Rows there
    // are ~rows/2 away, so no warm-up row aliases the measured binding.
    if (cfg.warmupRefs > 0) {
        Row warm_anchor =
            (anchor + mapping.rows() / 2) % mapping.rows();
        warm_anchor = std::min<Row>(
            std::max<Row>(warm_anchor, 8), mapping.rows() - 8);
        if (spec.paired())
            warm_anchor &= ~1;
        const PatternBinding warm_binding =
            bindPattern(pattern, spec, mapping, bank, warm_anchor);
        SynthesizedPattern warm(pattern, warm_binding, host.timing());
        evaluator.run(warm, {}, cfg.warmupRefs);
    }

    const Row align_dummy =
        mapping.toLogical((anchor + 9'000) % mapping.rows());
    evaluator.alignToTrrEvent(bank, align_dummy);

    const PatternBinding binding =
        bindPattern(pattern, spec, mapping, bank, anchor);
    SynthesizedPattern synth(pattern, binding, host.timing());
    const std::vector<std::pair<Bank, Row>> victims =
        patternVictims(pattern, spec, mapping, bank, anchor);

    const int window = cfg.windowRefs > 0 ? cfg.windowRefs
                                          : spec.refreshPeriodRefs;
    const AttackOutcome outcome =
        evaluator.run(synth, victims, window);

    PatternEval eval;
    eval.flips = outcome.totalFlips();
    eval.vulnerableRows = outcome.vulnerableRows();
    return eval;
}

SynthModuleResult
synthesizeForModule(const ModuleSpec &spec, const SynthConfig &cfg,
                    Rng rng, const std::atomic<bool> *stop)
{
    SynthModuleResult result;
    result.windowRefs = cfg.windowRefs > 0 ? cfg.windowRefs
                                           : spec.refreshPeriodRefs;
    const int hint = cfg.trrPeriodHint >= 0
        ? cfg.trrPeriodHint
        : spec.traits().trrToRefPeriod;

    const Row usable = spec.rowsPerBank - 16;
    const int positions = std::max(1, cfg.positions);
    const Row stride = std::max<Row>(1, usable / positions);

    // --- search ------------------------------------------------------
    // Insight first, fuzzing second: the first attempts replay the
    // deterministic §7.1 shape family for the module's mechanism
    // class, then the seeded draws explore beyond it.
    const std::vector<HammerPattern> seeded =
        insightCandidates(spec, cfg.ranges, hint);
    HammerPattern winner;
    {
        ProfSpan span("synth.search");
        for (int attempt = 0;
             attempt < cfg.attempts && !result.beaten; ++attempt) {
            ++result.attemptsTried;
            const HammerPattern candidate =
                attempt < static_cast<int>(seeded.size())
                    ? seeded[static_cast<std::size_t>(attempt)]
                    : drawPattern(rng, cfg.ranges, hint);
            // Per-attempt anchor jitter: the victim's regular-refresh
            // offset inside the evaluation window is position-
            // dependent, so repeated attempts must explore different
            // rows, not retry the same ones.
            const Row jitter =
                static_cast<Row>(rng.uniformInt(0, stride - 1));
            for (int i = 0; i < positions; ++i) {
                Row anchor = 8 + stride * i + jitter;
                anchor = std::min<Row>(anchor, spec.rowsPerBank - 8);
                if (spec.paired())
                    anchor &= ~1; // paired victims sit on even rows
                const PatternEval eval = evaluatePattern(
                    spec, cfg, candidate, cfg.bank, anchor, stop);
                if (eval.flips > 0) {
                    result.beaten = true;
                    result.winningAttempt = attempt;
                    result.anchor = anchor;
                    result.searchFlips = eval.flips;
                    winner = candidate;
                    break;
                }
            }
        }
    }
    if (!result.beaten)
        return result;
    result.elementsBefore =
        static_cast<int>(winner.elements.size());

    // --- minimize: ddmin over pattern *elements* ---------------------
    HammerPattern best = winner;
    if (cfg.minimize && winner.elements.size() > 1) {
        ProfSpan span("synth.minimize");
        MinimizeOptions options;
        options.maxEvaluations = cfg.minimizeMaxEvaluations;
        const DdminResult pass = ddminIndices(
            winner.elements.size(),
            [&](const std::vector<std::size_t> &kept) {
                HammerPattern candidate;
                candidate.basePeriod = winner.basePeriod;
                for (const std::size_t i : kept)
                    candidate.elements.push_back(winner.elements[i]);
                if (!validatePattern(candidate).empty())
                    return false; // e.g. dropped every aggressor
                return evaluatePattern(spec, cfg, candidate, cfg.bank,
                                       result.anchor, stop)
                           .flips > 0;
            },
            options);
        result.minimizeEvaluations = pass.evaluations;
        HammerPattern minimized;
        minimized.basePeriod = winner.basePeriod;
        for (const std::size_t i : pass.kept)
            minimized.elements.push_back(winner.elements[i]);
        if (validatePattern(minimized).empty())
            best = minimized;
    }
    result.best = best;
    result.bestClass = patternClass(best);
    result.elementsAfter = static_cast<int>(best.elements.size());
    result.hammersPerAggrPerPeriod =
        aggressorHammersPerPeriod(best, Timing{});

    // --- verify: replay the minimized winner on a fresh substrate ----
    {
        ProfSpan span("synth.verify");
        result.verifyFlips =
            evaluatePattern(spec, cfg, best, cfg.bank, result.anchor,
                            stop)
                .flips;
    }

    // --- sweep the survivor across banks -----------------------------
    {
        ProfSpan span("synth.sweep");
        const int banks = std::min(cfg.sweepBanks, spec.banks);
        for (int bank = 0; bank < banks; ++bank) {
            result.bankFlips.push_back(
                evaluatePattern(spec, cfg, best,
                                static_cast<Bank>(bank),
                                result.anchor, stop)
                    .flips);
        }
    }
    return result;
}

Json
synthVerdict(const ModuleSpec &spec, const SynthModuleResult &result)
{
    Json v = Json::object();
    v["trr"] = Json(trrVersionName(spec.trr));
    v["beaten"] = Json(result.beaten);
    v["attempts_tried"] = Json(result.attemptsTried);
    v["window_refs"] = Json(result.windowRefs);
    if (!result.beaten)
        return v;
    v["winning_attempt"] = Json(result.winningAttempt);
    v["anchor"] = Json(static_cast<std::int64_t>(result.anchor));
    v["search_flips"] = Json(result.searchFlips);
    v["verify_flips"] = Json(result.verifyFlips);
    v["pattern_class"] = Json(result.bestClass);
    v["pattern"] = Json(serializeHammerPattern(result.best));
    v["elements_before"] = Json(result.elementsBefore);
    v["elements_after"] = Json(result.elementsAfter);
    v["minimize_evals"] =
        Json(static_cast<std::uint64_t>(result.minimizeEvaluations));
    v["hammers_per_aggr_per_period"] =
        Json(result.hammersPerAggrPerPeriod);
    Json banks = Json::array();
    for (const int flips : result.bankFlips)
        banks.push(Json(flips));
    v["bank_flips"] = std::move(banks);
    return v;
}

std::string
synthContentTag(const SynthConfig &cfg)
{
    std::ostringstream oss;
    oss << "synth:v2:" << cfg.attempts << ':' << cfg.positions << ':'
        << cfg.windowRefs << ':' << cfg.warmupRefs << ':'
        << cfg.sweepBanks << ':'
        << (cfg.minimize ? 1 : 0) << ':'
        << cfg.minimizeMaxEvaluations << ':' << cfg.bank << ':'
        << cfg.moduleSeed << ':' << cfg.trrPeriodHint << ':'
        << cfg.ranges.minBasePeriod << ':' << cfg.ranges.maxBasePeriod
        << ':' << cfg.ranges.minAmplitude << ':'
        << cfg.ranges.maxAmplitude << ':' << cfg.ranges.maxDummyRows
        << ':' << cfg.ranges.maxDummyBanks;
    return oss.str();
}

CampaignResult
runSynthCampaign(const std::vector<ModuleSpec> &specs,
                 const SynthCampaignConfig &cfg)
{
    CampaignConfig runner_cfg;
    runner_cfg.jobs = cfg.jobs;
    runner_cfg.seed = cfg.seed;
    runner_cfg.moduleSeed = cfg.synth.moduleSeed;
    runner_cfg.maxWatchdogRetries = cfg.maxWatchdogRetries;
    runner_cfg.journalPath = cfg.journalPath;
    runner_cfg.resume = cfg.resume;
    runner_cfg.telemetry = cfg.telemetry;
    runner_cfg.stopFlag = cfg.stopFlag;
    runner_cfg.contentTag = synthContentTag(cfg.synth);

    const SynthConfig synth = cfg.synth;
    CampaignRunner runner(runner_cfg);
    return runner.run(specs, [synth](JobContext &ctx) {
        SynthConfig job_cfg = synth;
        job_cfg.moduleSeed = ctx.moduleSeed;
        // A named sub-stream, so a future second consumer of the job
        // RNG cannot shift the synthesis draws.
        const SynthModuleResult result = synthesizeForModule(
            ctx.spec, job_cfg, ctx.rng.fork("synth"), ctx.stopFlag);

        ctx.metrics.counter("synth.attempts")
            .inc(static_cast<std::uint64_t>(result.attemptsTried));
        if (result.beaten) {
            ctx.metrics.counter("synth.beaten").inc();
            ctx.metrics.counter("synth.verify_flips")
                .inc(static_cast<std::uint64_t>(result.verifyFlips));
        }

        JobOutcome outcome;
        outcome.ok = result.beaten;
        outcome.verdict = synthVerdict(ctx.spec, result);
        return outcome;
    });
}

Json
bypassTable(const CampaignResult &result,
            const std::vector<ModuleSpec> &specs)
{
    struct Group
    {
        std::string trr;
        int total = 0;
        int beaten = 0;
        std::set<std::string> classes;
        int minBudget = INT_MAX;
        int maxBudget = 0;
        std::string exampleModule;
        std::string examplePattern;
        int exampleFlips = 0;
    };
    std::vector<Group> groups;
    std::map<std::string, std::size_t> group_index;

    Json modules = Json::array();
    for (std::size_t i = 0;
         i < result.modules.size() && i < specs.size(); ++i) {
        const ModuleResult &m = result.modules[i];
        const ModuleSpec &spec = specs[i];
        Json row = Json::object();
        row["module"] = Json(spec.name);
        if (!m.completed) {
            row["pending"] = Json(true);
            modules.push(std::move(row));
            continue;
        }
        for (const auto &[key, value] : m.verdict.members())
            row[key] = value;
        modules.push(std::move(row));

        const std::string trr = trrVersionName(spec.trr);
        if (group_index.find(trr) == group_index.end()) {
            group_index[trr] = groups.size();
            groups.push_back(Group{});
            groups.back().trr = trr;
        }
        Group &group = groups[group_index[trr]];
        ++group.total;
        const Json *beaten = m.verdict.find("beaten");
        if (beaten == nullptr || !beaten->asBool())
            continue;
        ++group.beaten;
        if (const Json *cls = m.verdict.find("pattern_class"))
            group.classes.insert(cls->asString());
        if (const Json *budget =
                m.verdict.find("hammers_per_aggr_per_period")) {
            const int b = static_cast<int>(budget->asInt());
            group.minBudget = std::min(group.minBudget, b);
            group.maxBudget = std::max(group.maxBudget, b);
        }
        if (group.exampleModule.empty()) {
            group.exampleModule = spec.name;
            if (const Json *pattern = m.verdict.find("pattern"))
                group.examplePattern = pattern->asString();
            if (const Json *flips = m.verdict.find("verify_flips"))
                group.exampleFlips = static_cast<int>(flips->asInt());
        }
    }

    Json by_trr = Json::array();
    for (const Group &group : groups) {
        Json row = Json::object();
        row["trr"] = Json(group.trr);
        row["modules"] = Json(group.total);
        row["beaten"] = Json(group.beaten);
        Json classes = Json::array();
        for (const std::string &cls : group.classes)
            classes.push(Json(cls));
        row["pattern_classes"] = std::move(classes);
        if (group.beaten > 0) {
            row["min_hammers_per_aggr_per_period"] =
                Json(group.minBudget);
            row["max_hammers_per_aggr_per_period"] =
                Json(group.maxBudget);
            row["example_module"] = Json(group.exampleModule);
            row["example_flips"] = Json(group.exampleFlips);
            row["example_pattern"] = Json(group.examplePattern);
        }
        by_trr.push(std::move(row));
    }

    Json table = Json::object();
    table["modules"] = std::move(modules);
    table["by_trr"] = std::move(by_trr);
    return table;
}

void
fillBypassReport(ExperimentReport &report, const CampaignResult &result,
                 const std::vector<ModuleSpec> &specs,
                 const SynthCampaignConfig &cfg)
{
    report.setSeed(cfg.seed);
    report.setConfig("module_seed", Json(cfg.synth.moduleSeed));
    report.setConfig("attempts", Json(cfg.synth.attempts));
    report.setConfig("positions", Json(cfg.synth.positions));
    report.setConfig("window_refs", Json(cfg.synth.windowRefs));
    report.setConfig("warmup_refs", Json(cfg.synth.warmupRefs));
    report.setConfig("sweep_banks", Json(cfg.synth.sweepBanks));
    report.setConfig("content_tag",
                     Json(synthContentTag(cfg.synth)));
    report.setConfig(
        "modules", Json(static_cast<std::uint64_t>(specs.size())));
    result.fillReport(report);
    report.setSection("bypass_table", bypassTable(result, specs));
}

} // namespace utrr
