/**
 * @file
 * Attack evaluation harness (paper §7.2-§7.4).
 *
 * Runs an access pattern for a fixed number of REF intervals while
 * issuing REF commands at the default rate (one per tREFI), exactly as
 * the paper's SoftMC programs do, then reads the victim rows and
 * collects flip statistics:
 *  - bit flips per victim row (Fig. 8);
 *  - whether each row is vulnerable at all (Fig. 9, Table 1);
 *  - bit flips per 8-byte dataword, the unit of typical ECC (Fig. 10).
 */

#ifndef UTRR_ATTACK_EVALUATOR_HH
#define UTRR_ATTACK_EVALUATOR_HH

#include <map>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "attack/pattern.hh"
#include "softmc/host.hh"

namespace utrr
{

/** Result of running one pattern at one position. */
struct AttackOutcome
{
    /** Flip count per (bank, logical victim row). */
    std::map<std::pair<Bank, Row>, int> victimFlips;
    /** Flip count per 8-byte word, for every word with >= 1 flip. */
    Histogram wordFlips;
    /** REF intervals executed. */
    int slots = 0;

    /** Total flips across victims. */
    int totalFlips() const;
    /** Largest per-row flip count. */
    int maxRowFlips() const;
    /** Number of victims with at least one flip. */
    int vulnerableRows() const;
};

/**
 * REF-synchronized attack runner.
 */
class AttackEvaluator
{
  public:
    explicit AttackEvaluator(SoftMcHost &host);

    /**
     * Align the next slot boundary to a TRR event: hammer a throwaway
     * dummy row and issue REFs until the module performs a TRR-induced
     * refresh (observed via the module's TRR counter — the simulation
     * stand-in for the REF-timing side channel the paper uses for
     * synchronization).
     */
    void alignToTrrEvent(Bank bank, Row dummy_logical, int max_refs = 64);

    /**
     * Run @p pattern for @p slots REF intervals against the given
     * victim rows and collect flip statistics.
     */
    AttackOutcome run(AccessPattern &pattern,
                      const std::vector<std::pair<Bank, Row>> &victims,
                      int slots,
                      const DataPattern &victim_pattern =
                          DataPattern::allOnes(),
                      const DataPattern &aggressor_pattern =
                          DataPattern::allZeros());

  private:
    SoftMcHost &host;
};

} // namespace utrr

#endif // UTRR_ATTACK_EVALUATOR_HH
