/**
 * @file
 * TRRespass-style black-box pattern fuzzer (Frigo et al., S&P'20 —
 * the paper's state-of-the-art baseline [24]).
 *
 * TRRespass knows nothing about the TRR internals: it fuzzes
 * many-sided hammering patterns (number of aggressor pairs, spacing,
 * hammer distribution) and keeps whatever flips bits. The paper shows
 * this fails on 29 of 42 DDR4 modules; U-TRR's insight-driven patterns
 * succeed on all 45. The fuzzer here reproduces that comparison on the
 * simulated modules (bench_trrespass).
 */

#ifndef UTRR_ATTACK_TRRESPASS_HH
#define UTRR_ATTACK_TRRESPASS_HH

#include "attack/evaluator.hh"
#include "attack/pattern.hh"
#include "common/rng.hh"
#include "core/mapping_reveng.hh"

namespace utrr
{

/** One fuzzed many-sided pattern shape. */
struct FuzzedPattern
{
    int sides = 2;        // aggressor rows
    int spacing = 2;      // physical rows between aggressors
    int hammersPerAggr = 0; // per REF interval (0 = fill the budget)

    std::string describe() const;
};

/** Outcome of fuzzing one module. */
struct FuzzResult
{
    FuzzedPattern best;
    int bestFlips = 0;
    int patternsTried = 0;
    bool anyFlips() const { return bestFlips > 0; }
};

/**
 * The fuzzer.
 */
class TrrespassFuzzer
{
  public:
    struct Config
    {
        /** Random pattern shapes to try. */
        int attempts = 24;
        /** REF intervals each attempt hammers for. */
        int windowRefs = 0; // 0 = one regular-refresh period
        /** Victim anchors evaluated per attempt. */
        int positions = 2;
        int minSides = 2;
        int maxSides = 20;
    };

    TrrespassFuzzer(SoftMcHost &host, DiscoveredMapping mapping,
                    Config config, std::uint64_t seed);

    /** Fuzz the module; returns the best pattern found. */
    FuzzResult fuzz();

    /** Evaluate one specific shape (flips summed over positions). */
    int evaluateShape(const FuzzedPattern &shape);

  private:
    SoftMcHost &host;
    DiscoveredMapping mapping;
    Config cfg;
    Rng rng;
};

} // namespace utrr

#endif // UTRR_ATTACK_TRRESPASS_HH
