#include "attack/hammer_pattern.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"
#include "softmc/host.hh"

namespace utrr
{

namespace
{

/**
 * A decoy row far from the victim: same derivation as the hand-crafted
 * patterns (pattern.cc), so synthesized and §7.1 patterns feed the
 * sampler from the same row population.
 */
Row
farDummyRow(const DiscoveredMapping &mapping, Row victim_phys,
            int index)
{
    const Row rows = mapping.rows();
    Row phys = (victim_phys + 5'000 + 4 * index) % rows;
    while (std::abs(phys - victim_phys) < 100)
        phys = (phys + 128) % rows;
    return mapping.toLogical(phys);
}

const char *
kindName(ElementKind kind)
{
    return kind == ElementKind::kAggressors ? "aggr" : "dummy";
}

} // namespace

bool
HammerPattern::activeAt(const PatternElement &element,
                        std::uint64_t slot) const
{
    const int period = std::max(basePeriod, 1);
    const int pos =
        static_cast<int>(slot % static_cast<std::uint64_t>(period));
    if (pos < element.phase)
        return false;
    const int frequency = std::max(element.frequency, 1);
    return (pos - element.phase) % frequency < element.span;
}

int
HammerPattern::aggressorRowCount() const
{
    int rows = 1;
    for (const PatternElement &e : elements) {
        if (e.kind == ElementKind::kAggressors)
            rows = std::max(rows, e.rows);
    }
    return rows;
}

int
HammerPattern::dummyRowCount() const
{
    int rows = 0;
    for (const PatternElement &e : elements) {
        if (e.kind == ElementKind::kDummies)
            rows = std::max(rows, std::max(e.rows, e.banks));
    }
    return rows;
}

int
HammerPattern::dummyBankCount() const
{
    int banks = 0;
    for (const PatternElement &e : elements) {
        if (e.kind == ElementKind::kDummies)
            banks = std::max(banks, e.banks);
    }
    return banks;
}

std::string
validatePattern(const HammerPattern &pattern)
{
    if (pattern.basePeriod < 1 ||
        pattern.basePeriod > PatternLimits::kMaxBasePeriod)
        return "basePeriod out of range";
    if (pattern.elements.empty())
        return "pattern has no elements";
    if (pattern.elements.size() > PatternLimits::kMaxElements)
        return "too many elements";
    bool any_aggr = false;
    for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
        const PatternElement &e = pattern.elements[i];
        const std::string where =
            "element " + std::to_string(i) + ": ";
        if (e.kind == ElementKind::kAggressors) {
            any_aggr = true;
            if (e.rows < 1 || e.rows > PatternLimits::kMaxAggressorRows)
                return where + "aggressor rows out of range";
            if (e.banks != 1)
                return where + "aggressors are single-bank";
        } else {
            if (e.rows < 1 || e.rows > PatternLimits::kMaxDummyRows)
                return where + "dummy rows out of range";
            if (e.banks < 1 || e.banks > PatternLimits::kMaxDummyBanks)
                return where + "dummy banks out of range";
        }
        if (e.frequency < 1 ||
            e.frequency > PatternLimits::kMaxBasePeriod)
            return where + "frequency out of range";
        if (e.phase < 0 || e.phase >= pattern.basePeriod)
            return where + "phase outside the base period";
        if (e.span < 1 || e.span > pattern.basePeriod)
            return where + "span out of range";
        if (e.amplitude < 0 ||
            e.amplitude > PatternLimits::kMaxAmplitude)
            return where + "amplitude out of range";
    }
    if (!any_aggr)
        return "pattern has no aggressor element";
    return "";
}

std::string
patternClass(const HammerPattern &pattern)
{
    bool any_dummy = false;
    for (const PatternElement &e : pattern.elements)
        any_dummy |= e.kind == ElementKind::kDummies;
    if (!any_dummy)
        return "uniform";

    // The vendor-C shape: emission starts with a phase-0 dummy burst
    // and every aggressor burst waits for a later phase.
    int min_aggr_phase = pattern.basePeriod;
    for (const PatternElement &e : pattern.elements) {
        if (e.kind == ElementKind::kAggressors)
            min_aggr_phase = std::min(min_aggr_phase, e.phase);
    }
    const PatternElement &first = pattern.elements.front();
    if (first.kind == ElementKind::kDummies && first.phase == 0 &&
        min_aggr_phase > 0)
        return "window-fill";

    // Partial-period aggressors (the vendor-B shape) vs aggressors in
    // every slot alongside the decoys (the vendor-A shape).
    int aggr_slots = 0;
    for (int pos = 0; pos < pattern.basePeriod; ++pos) {
        for (const PatternElement &e : pattern.elements) {
            if (e.kind == ElementKind::kAggressors &&
                pattern.activeAt(e, static_cast<std::uint64_t>(pos))) {
                ++aggr_slots;
                break;
            }
        }
    }
    return aggr_slots < pattern.basePeriod ? "early-aggr"
                                           : "decoy-evict";
}

std::string
serializeHammerPattern(const HammerPattern &pattern)
{
    std::ostringstream oss;
    oss << "hammer-pattern v1\n";
    oss << "period " << pattern.basePeriod << "\n";
    for (const PatternElement &e : pattern.elements) {
        oss << "elem kind=" << kindName(e.kind) << " rows=" << e.rows
            << " banks=" << e.banks << " freq=" << e.frequency
            << " phase=" << e.phase << " span=" << e.span
            << " amp=" << e.amplitude << "\n";
    }
    return oss.str();
}

std::string
parseHammerPattern(const std::string &text, HammerPattern &out)
{
    HammerPattern pattern;
    pattern.elements.clear();
    std::istringstream iss(text);
    std::string line;
    bool saw_magic = false;
    bool saw_period = false;
    int lineno = 0;
    while (std::getline(iss, line)) {
        ++lineno;
        const std::string where =
            "line " + std::to_string(lineno) + ": ";
        // Strip comments and surrounding whitespace.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word))
            continue; // blank / comment-only
        if (!saw_magic) {
            std::string version;
            if (word != "hammer-pattern" || !(ls >> version) ||
                version != "v1")
                return where + "expected 'hammer-pattern v1'";
            saw_magic = true;
            continue;
        }
        if (word == "period") {
            if (!(ls >> pattern.basePeriod))
                return where + "bad period";
            saw_period = true;
            continue;
        }
        if (word != "elem")
            return where + "unknown directive '" + word + "'";
        PatternElement elem;
        bool saw_kind = false;
        std::string field;
        while (ls >> field) {
            const std::size_t eq = field.find('=');
            if (eq == std::string::npos)
                return where + "expected key=value, got '" + field +
                    "'";
            const std::string key = field.substr(0, eq);
            const std::string value = field.substr(eq + 1);
            if (key == "kind") {
                if (value == "aggr")
                    elem.kind = ElementKind::kAggressors;
                else if (value == "dummy")
                    elem.kind = ElementKind::kDummies;
                else
                    return where + "unknown kind '" + value + "'";
                saw_kind = true;
                continue;
            }
            int parsed = 0;
            try {
                parsed = std::stoi(value);
            } catch (const std::exception &) {
                return where + "bad integer for '" + key + "'";
            }
            if (key == "rows")
                elem.rows = parsed;
            else if (key == "banks")
                elem.banks = parsed;
            else if (key == "freq")
                elem.frequency = parsed;
            else if (key == "phase")
                elem.phase = parsed;
            else if (key == "span")
                elem.span = parsed;
            else if (key == "amp")
                elem.amplitude = parsed;
            else
                return where + "unknown key '" + key + "'";
        }
        if (!saw_kind)
            return where + "elem without kind=";
        pattern.elements.push_back(elem);
    }
    if (!saw_magic)
        return "missing 'hammer-pattern v1' header";
    if (!saw_period)
        return "missing 'period' directive";
    const std::string invalid = validatePattern(pattern);
    if (!invalid.empty())
        return invalid;
    out = std::move(pattern);
    return "";
}

PatternBinding
bindPattern(const HammerPattern &pattern, const ModuleSpec &spec,
            const DiscoveredMapping &mapping, Bank bank,
            Row victim_phys)
{
    PatternBinding binding;
    binding.bank = bank;
    binding.victimPhys = victim_phys;

    // On paired-row modules the only row that disturbs victim V is its
    // remap partner V^1 (DESIGN.md §4), so the "double-sided" second
    // aggressor is the partner of the next even victim V+2.
    const int aggr_rows = pattern.aggressorRowCount();
    if (spec.paired()) {
        binding.aggressors.push_back(
            mapping.toLogical(victim_phys ^ 1));
        if (aggr_rows >= 2)
            binding.aggressors.push_back(
                mapping.toLogical((victim_phys + 2) ^ 1));
    } else {
        binding.aggressors.push_back(
            mapping.toLogical(victim_phys - 1));
        if (aggr_rows >= 2)
            binding.aggressors.push_back(
                mapping.toLogical(victim_phys + 1));
    }

    const int dummy_rows = pattern.dummyRowCount();
    for (int i = 0; i < dummy_rows; ++i)
        binding.dummies.push_back(
            farDummyRow(mapping, victim_phys, i));

    const int dummy_banks = std::max(pattern.dummyBankCount(), 1);
    for (int i = 0; i < dummy_banks; ++i) {
        binding.dummyBanks.push_back(
            i == 0 ? bank
                   : static_cast<Bank>((bank + i) % spec.banks));
    }
    return binding;
}

std::vector<std::pair<Bank, Row>>
patternVictims(const HammerPattern &pattern, const ModuleSpec &spec,
               const DiscoveredMapping &mapping, Bank bank,
               Row victim_phys)
{
    std::vector<std::pair<Bank, Row>> victims;
    victims.emplace_back(bank, mapping.toLogical(victim_phys));
    if (spec.paired() && pattern.aggressorRowCount() >= 2)
        victims.emplace_back(bank, mapping.toLogical(victim_phys + 2));
    return victims;
}

SlotPlan
planSlot(const HammerPattern &pattern, std::uint64_t slot,
         const Timing &timing)
{
    SlotPlan plan;
    planSlotInto(pattern, slot, timing, plan);
    return plan;
}

void
planSlotInto(const HammerPattern &pattern, std::uint64_t slot,
             const Timing &timing, SlotPlan &plan)
{
    plan.bursts.clear();
    plan.actsOwnBank = 0;
    plan.timePlanned = 0;
    const Time slot_budget = timing.tREFI - timing.tRFC;
    int acts_left = timing.hammersPerRefi();
    Time time_used = 0;

    for (std::size_t i = 0; i < pattern.elements.size(); ++i) {
        const PatternElement &e = pattern.elements[i];
        if (!pattern.activeAt(e, slot))
            continue;
        if (e.kind != ElementKind::kDummies || e.banks <= 1) {
            // Same-bank burst: bounded by the slot's ACT budget.
            if (acts_left < e.rows)
                continue;
            int per = acts_left / e.rows;
            if (e.amplitude > 0)
                per = std::min(per, e.amplitude);
            if (per <= 0)
                continue;
            BurstPlan burst;
            burst.element = i;
            burst.hammersPerRow = per;
            plan.bursts.push_back(burst);
            acts_left -= per * e.rows;
            plan.actsOwnBank += per * e.rows;
            time_used += static_cast<Time>(per) * e.rows *
                timing.hammerCycle();
        } else {
            // Multi-bank fill: bounded by the remaining slot *time*
            // (banks hammer in parallel, limited by tFAW).
            const Time per_round =
                std::max(timing.hammerCycle(),
                         static_cast<Time>(e.banks) * timing.tFAW / 4);
            const Time remaining = slot_budget - time_used;
            int rounds = static_cast<int>(remaining / per_round);
            if (e.amplitude > 0)
                rounds = std::min(rounds, e.amplitude);
            if (rounds <= 0)
                continue;
            BurstPlan burst;
            burst.element = i;
            burst.rounds = rounds;
            plan.bursts.push_back(burst);
            time_used += static_cast<Time>(rounds) * per_round;
            plan.actsOwnBank += rounds; // one own-bank ACT per round
            acts_left = std::max(
                0,
                std::min(acts_left - rounds,
                         static_cast<int>((slot_budget - time_used) /
                                          timing.hammerCycle())));
        }
    }
    plan.timePlanned = time_used;
}

Program
lowerToProgram(const HammerPattern &pattern,
               const PatternBinding &binding, const Timing &timing,
               int slots)
{
    UTRR_ASSERT(validatePattern(pattern).empty(),
                "cannot lower an invalid pattern");
    Program prog;
    const Time slot_budget = timing.tREFI - timing.tRFC;
    for (int slot = 0; slot < slots; ++slot) {
        const SlotPlan plan =
            planSlot(pattern, static_cast<std::uint64_t>(slot), timing);
        // The program ISA is strictly serial (every ACT/PRE pair costs
        // one hammerCycle), while the live host's hammerMultiBank
        // overlaps banks. Account the compiled commands at their
        // serial cost and truncate multi-bank fills so the slot still
        // meets its REF on time.
        Time serial_used = 0;
        for (const BurstPlan &burst : plan.bursts) {
            const PatternElement &e = pattern.elements[burst.element];
            if (e.kind == ElementKind::kAggressors) {
                if (e.rows >= 2 && binding.aggressors.size() >= 2) {
                    // Interleaved double-sided, same order as
                    // SoftMcHost::hammerInterleaved.
                    for (int h = 0; h < burst.hammersPerRow; ++h) {
                        for (int r = 0; r < 2; ++r) {
                            prog.act(binding.bank,
                                     binding.aggressors[r]);
                            prog.pre(binding.bank);
                        }
                    }
                    serial_used += static_cast<Time>(2) *
                        burst.hammersPerRow * timing.hammerCycle();
                } else {
                    prog.hammer(binding.bank, binding.aggressors[0],
                                burst.hammersPerRow);
                    serial_used += static_cast<Time>(
                                       burst.hammersPerRow) *
                        timing.hammerCycle();
                }
            } else if (e.banks <= 1) {
                for (int r = 0; r < e.rows; ++r) {
                    prog.hammer(
                        binding.bank,
                        binding.dummies[r % binding.dummies.size()],
                        burst.hammersPerRow);
                }
                serial_used += static_cast<Time>(e.rows) *
                    burst.hammersPerRow * timing.hammerCycle();
            } else {
                const Time per_round = static_cast<Time>(e.banks) *
                    timing.hammerCycle();
                const int rounds = std::min<int>(
                    burst.rounds,
                    static_cast<int>((slot_budget - serial_used) /
                                     per_round));
                for (int round = 0; round < rounds; ++round) {
                    for (int b = 0; b < e.banks; ++b) {
                        const Bank bank =
                            binding
                                .dummyBanks[b % binding.dummyBanks
                                                    .size()];
                        prog.act(
                            bank,
                            binding.dummies[b % binding.dummies.size()]);
                        prog.pre(bank);
                    }
                }
                serial_used += static_cast<Time>(rounds) * per_round;
            }
        }
        if (serial_used < slot_budget)
            prog.wait(slot_budget - serial_used);
        prog.ref();
    }
    return prog;
}

SynthesizedPattern::SynthesizedPattern(HammerPattern pattern,
                                       PatternBinding binding,
                                       const Timing &timing)
    : pat(std::move(pattern)), bind(std::move(binding)), timing(timing)
{
    UTRR_ASSERT(validatePattern(pat).empty(),
                "cannot run an invalid pattern");
    UTRR_ASSERT(!bind.aggressors.empty(), "binding has no aggressors");
}

std::string
SynthesizedPattern::name() const
{
    return "synth-" + patternClass(pat);
}

void
SynthesizedPattern::runSlot(SoftMcHost &host, std::uint64_t slot)
{
    planSlotInto(pat, slot, timing, slotScratch);
    for (const BurstPlan &burst : slotScratch.bursts) {
        const PatternElement &e = pat.elements[burst.element];
        if (e.kind == ElementKind::kAggressors) {
            if (e.rows >= 2 && bind.aggressors.size() >= 2) {
                rowScratch.assign({{bind.bank, bind.aggressors[0]},
                                   {bind.bank, bind.aggressors[1]}});
                countScratch.assign(
                    {burst.hammersPerRow, burst.hammersPerRow});
                host.hammerInterleaved(rowScratch, countScratch);
            } else {
                host.hammer(bind.bank, bind.aggressors[0],
                            burst.hammersPerRow);
            }
        } else if (e.banks <= 1) {
            for (int r = 0; r < e.rows; ++r) {
                host.hammer(bind.bank,
                            bind.dummies[r % bind.dummies.size()],
                            burst.hammersPerRow);
            }
        } else {
            rowScratch.clear();
            rowScratch.reserve(static_cast<std::size_t>(e.banks));
            for (int b = 0; b < e.banks; ++b) {
                rowScratch.emplace_back(
                    bind.dummyBanks[b % bind.dummyBanks.size()],
                    bind.dummies[b % bind.dummies.size()]);
            }
            host.hammerMultiBank(rowScratch, burst.rounds);
        }
    }
}

std::vector<std::pair<Bank, Row>>
SynthesizedPattern::aggressorRows() const
{
    std::vector<std::pair<Bank, Row>> rows;
    for (const Row aggr : bind.aggressors)
        rows.emplace_back(bind.bank, aggr);
    return rows;
}

} // namespace utrr
