#include "attack/trrespass.hh"

#include <algorithm>

#include "common/logging.hh"

namespace utrr
{

std::string
FuzzedPattern::describe() const
{
    return logFmt(sides, "-sided, spacing ", spacing, ", ",
                  hammersPerAggr, " hammers/aggr/REF");
}

TrrespassFuzzer::TrrespassFuzzer(SoftMcHost &host,
                                 DiscoveredMapping mapping,
                                 Config config, std::uint64_t seed)
    : host(host), mapping(std::move(mapping)), cfg(config), rng(seed)
{
}

int
TrrespassFuzzer::evaluateShape(const FuzzedPattern &shape)
{
    const ModuleSpec &spec = host.module().spec();
    const int window = cfg.windowRefs > 0 ? cfg.windowRefs
                                          : spec.refreshPeriodRefs;
    AttackEvaluator evaluator(host);

    int total_flips = 0;
    for (int p = 0; p < cfg.positions; ++p) {
        // Anchor of the aggressor comb; victims are the rows between
        // consecutive aggressors.
        const Row anchor = 1'024 +
            static_cast<Row>(rng.uniformInt(
                0, spec.rowsPerBank - 64 * shape.spacing - 2'048));

        std::vector<Row> aggressors;
        std::vector<std::pair<Bank, Row>> victims;
        for (int s = 0; s < shape.sides; ++s) {
            const Row aggr_phys =
                anchor + s * (shape.spacing + 1);
            aggressors.push_back(mapping.toLogical(aggr_phys));
            if (s + 1 < shape.sides && shape.spacing >= 1) {
                // First victim row inside each gap.
                victims.emplace_back(
                    0, mapping.toLogical(aggr_phys + 1));
            }
        }
        if (victims.empty())
            victims.emplace_back(0, mapping.toLogical(anchor + 1));

        const int budget = host.timing().hammersPerRefi();
        const int hammers = shape.hammersPerAggr > 0
            ? shape.hammersPerAggr
            : std::max(1, budget / shape.sides);
        ManySidedPattern pattern(0, aggressors, hammers);
        const AttackOutcome outcome =
            evaluator.run(pattern, victims, window);
        total_flips += outcome.totalFlips();
    }
    return total_flips;
}

FuzzResult
TrrespassFuzzer::fuzz()
{
    FuzzResult result;
    for (int attempt = 0; attempt < cfg.attempts; ++attempt) {
        FuzzedPattern shape;
        shape.sides = static_cast<int>(
            rng.uniformInt(cfg.minSides, cfg.maxSides));
        shape.spacing = static_cast<int>(rng.uniformInt(1, 3));
        shape.hammersPerAggr = 0; // fill the REF interval
        const int flips = evaluateShape(shape);
        ++result.patternsTried;
        if (flips > result.bestFlips) {
            result.bestFlips = flips;
            result.best = shape;
        }
        UTRR_DEBUG("fuzz attempt ", attempt, " (", shape.describe(),
                   "): ", flips, " flips");
    }
    return result;
}

} // namespace utrr
