#include "attack/evaluator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace utrr
{

int
AttackOutcome::totalFlips() const
{
    int total = 0;
    for (const auto &[row, flips] : victimFlips)
        total += flips;
    return total;
}

int
AttackOutcome::maxRowFlips() const
{
    int best = 0;
    for (const auto &[row, flips] : victimFlips)
        best = std::max(best, flips);
    return best;
}

int
AttackOutcome::vulnerableRows() const
{
    int count = 0;
    for (const auto &[row, flips] : victimFlips)
        count += flips > 0 ? 1 : 0;
    return count;
}

AttackEvaluator::AttackEvaluator(SoftMcHost &host) : host(host)
{
}

void
AttackEvaluator::alignToTrrEvent(Bank bank, Row dummy_logical,
                                 int max_refs)
{
    const std::uint64_t before = host.module().trrRefreshCount();
    for (int i = 0; i < max_refs; ++i) {
        host.hammer(bank, dummy_logical, 8);
        host.ref();
        host.wait(host.timing().tREFI - host.timing().tRFC -
                  8 * host.timing().hammerCycle());
        if (host.module().trrRefreshCount() != before)
            return;
    }
    debug("no TRR event observed during alignment (no TRR?)");
}

AttackOutcome
AttackEvaluator::run(AccessPattern &pattern,
                     const std::vector<std::pair<Bank, Row>> &victims,
                     int slots, const DataPattern &victim_pattern,
                     const DataPattern &aggressor_pattern)
{
    // Initialize victim and aggressor data.
    for (const auto &[bank, row] : victims)
        host.writeRow(bank, row, victim_pattern);
    for (const auto &[bank, row] : pattern.aggressorRows())
        host.writeRow(bank, row, aggressor_pattern);

    pattern.begin(host);

    // The controller keeps the REF cadence no matter what: if a slot's
    // commands overrun the interval (e.g. because a throttling
    // mitigation injected delays), the excess time is a debt that eats
    // subsequent hammer slots — the attacker cannot stretch tREFI.
    const Time slot_budget = host.timing().tREFI - host.timing().tRFC;
    Time debt = 0;
    for (int slot = 0; slot < slots; ++slot) {
        if (debt >= slot_budget) {
            debt -= slot_budget;
            host.wait(slot_budget);
            host.ref();
            continue; // this hammer slot was lost to the overrun
        }
        const Time start = host.now();
        pattern.runSlot(host, static_cast<std::uint64_t>(slot));
        const Time used = debt + (host.now() - start);
        if (used < slot_budget) {
            host.wait(slot_budget - used);
            debt = 0;
        } else {
            debt = used - slot_budget;
        }
        host.ref();
    }

    AttackOutcome outcome;
    outcome.slots = slots;
    for (const auto &[bank, row] : victims) {
        const RowReadout readout = host.readRow(bank, row);
        const std::vector<Col> flips =
            readout.flipsVs(victim_pattern, row);
        outcome.victimFlips[{bank, row}] =
            static_cast<int>(flips.size());

        // Per-8-byte-word flip counts (Fig. 10).
        std::map<int, int> per_word;
        for (Col col : flips)
            ++per_word[col / 64];
        for (const auto &[word, count] : per_word)
            outcome.wordFlips.add(count);
    }
    return outcome;
}

} // namespace utrr
