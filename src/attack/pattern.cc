#include "attack/pattern.hh"

#include <algorithm>

#include "common/logging.hh"

namespace utrr
{

SingleSidedPattern::SingleSidedPattern(Bank bank, Row aggressor_logical,
                                       int hammers_per_slot)
    : bank(bank), aggressor(aggressor_logical), hammers(hammers_per_slot)
{
}

void
SingleSidedPattern::runSlot(SoftMcHost &host, std::uint64_t /*slot*/)
{
    host.hammer(bank, aggressor, hammers);
}

std::vector<std::pair<Bank, Row>>
SingleSidedPattern::aggressorRows() const
{
    return {{bank, aggressor}};
}

DoubleSidedPattern::DoubleSidedPattern(Bank bank, Row aggr0_logical,
                                       Row aggr1_logical,
                                       int hammers_per_aggr_per_slot)
    : bank(bank), aggr0(aggr0_logical), aggr1(aggr1_logical),
      hammers(hammers_per_aggr_per_slot)
{
}

void
DoubleSidedPattern::runSlot(SoftMcHost &host, std::uint64_t /*slot*/)
{
    host.hammerInterleaved({{bank, aggr0}, {bank, aggr1}},
                           {hammers, hammers});
}

std::vector<std::pair<Bank, Row>>
DoubleSidedPattern::aggressorRows() const
{
    return {{bank, aggr0}, {bank, aggr1}};
}

ManySidedPattern::ManySidedPattern(Bank bank,
                                   std::vector<Row> aggressors_logical,
                                   int hammers_per_aggr_per_slot)
    : bank(bank), aggressors(std::move(aggressors_logical)),
      hammers(hammers_per_aggr_per_slot)
{
    UTRR_ASSERT(!aggressors.empty(), "need aggressors");
}

std::string
ManySidedPattern::name() const
{
    return logFmt(aggressors.size(), "-sided");
}

void
ManySidedPattern::runSlot(SoftMcHost &host, std::uint64_t /*slot*/)
{
    std::vector<std::pair<Bank, Row>> rows;
    std::vector<int> counts;
    for (Row aggr : aggressors) {
        rows.emplace_back(bank, aggr);
        counts.push_back(hammers);
    }
    host.hammerInterleaved(rows, counts);
}

std::vector<std::pair<Bank, Row>>
ManySidedPattern::aggressorRows() const
{
    std::vector<std::pair<Bank, Row>> rows;
    for (Row aggr : aggressors)
        rows.emplace_back(bank, aggr);
    return rows;
}

VendorAPattern::VendorAPattern(Bank bank, Row aggr0, Row aggr1,
                               std::vector<Row> dummies,
                               int hammers_per_aggr, Timing timing)
    : bank(bank), aggr0(aggr0), aggr1(aggr1),
      dummies(std::move(dummies)), aggrHammers(hammers_per_aggr)
{
    UTRR_ASSERT(!this->dummies.empty(), "vendor A pattern needs dummies");
    // Use the whole remaining slot budget for dummy hammers so the
    // low-count aggressor table entries are evicted before each
    // TRR-capable REF.
    const int budget = timing.hammersPerRefi();
    dummyHammers = std::max(
        0, (budget - 2 * aggrHammers) /
               static_cast<int>(this->dummies.size()));
}

void
VendorAPattern::runSlot(SoftMcHost &host, std::uint64_t /*slot*/)
{
    host.hammerInterleaved({{bank, aggr0}, {bank, aggr1}},
                           {aggrHammers, aggrHammers});
    for (Row dummy : dummies)
        host.hammer(bank, dummy, dummyHammers);
}

std::vector<std::pair<Bank, Row>>
VendorAPattern::aggressorRows() const
{
    return {{bank, aggr0}, {bank, aggr1}};
}

VendorBPattern::VendorBPattern(
    Bank bank, Row aggr0, Row aggr1,
    std::vector<std::pair<Bank, Row>> dummy_rows,
    int hammers_per_aggr_per_window, int trr_period, Timing timing)
    : bank(bank), aggr0(aggr0), aggr1(aggr1),
      dummyRows(std::move(dummy_rows)),
      aggrPerWindow(hammers_per_aggr_per_window), trrPeriod(trr_period),
      timing(timing)
{
    UTRR_ASSERT(trrPeriod > 0, "need the TRR-to-REF period");
    UTRR_ASSERT(!dummyRows.empty(), "vendor B pattern needs dummies");
}

void
VendorBPattern::begin(SoftMcHost &)
{
    aggrLeftInWindow = aggrPerWindow;
}

void
VendorBPattern::runSlot(SoftMcHost &host, std::uint64_t slot)
{
    // Slot 0 of each window is the first interval after a TRR-capable
    // REF: hammer the aggressors early, dummies late, so the sampler
    // holds a dummy when the next TRR-capable REF arrives.
    const int window_pos =
        static_cast<int>(slot % static_cast<std::uint64_t>(trrPeriod));
    if (window_pos == 0)
        aggrLeftInWindow = aggrPerWindow;

    const Time slot_budget = timing.tREFI - timing.tRFC;
    const Time slot_start = host.now();

    const int slot_capacity = timing.hammersPerRefi();
    const int aggr_now =
        std::min(aggrLeftInWindow, slot_capacity / 2);
    if (aggr_now > 0) {
        host.hammerInterleaved({{bank, aggr0}, {bank, aggr1}},
                               {aggr_now, aggr_now});
        aggrLeftInWindow -= aggr_now;
    }

    // Fill the remaining slot time with parallel dummy hammering
    // (bounded by tFAW across banks, footnote 12).
    const Time remaining = slot_budget - (host.now() - slot_start);
    if (remaining <= 0)
        return;
    const auto banks = static_cast<Time>(dummyRows.size());
    const Time per_round =
        std::max(timing.hammerCycle(), banks * timing.tFAW / 4);
    const int rounds = static_cast<int>(remaining / per_round);
    if (rounds > 0)
        host.hammerMultiBank(dummyRows, rounds);
}

std::vector<std::pair<Bank, Row>>
VendorBPattern::aggressorRows() const
{
    return {{bank, aggr0}, {bank, aggr1}};
}

VendorCPattern::VendorCPattern(Bank bank, Row aggr0, Row aggr1,
                               Row dummy, int window_acts,
                               int trr_period, Timing timing)
    : bank(bank), aggr0(aggr0), aggr1(aggr1), dummy(dummy),
      windowActs(window_acts), trrPeriod(trr_period), timing(timing)
{
    UTRR_ASSERT(trrPeriod > 0, "need the TRR-to-REF period");
}

void
VendorCPattern::begin(SoftMcHost &)
{
    burstLeftInWindow = windowActs;
}

void
VendorCPattern::runSlot(SoftMcHost &host, std::uint64_t slot)
{
    // Right after each TRR-induced refresh, the detection window
    // reopens: fill it entirely with dummy activations so the
    // aggressors stay invisible, then hammer them for the rest of the
    // window (Obs. C2).
    const int window_pos =
        static_cast<int>(slot % static_cast<std::uint64_t>(trrPeriod));
    if (window_pos == 0)
        burstLeftInWindow = windowActs;

    int budget = timing.hammersPerRefi();
    if (burstLeftInWindow > 0) {
        const int burst = std::min(burstLeftInWindow, budget);
        host.hammer(bank, dummy, burst);
        burstLeftInWindow -= burst;
        budget -= burst;
    }
    if (budget >= 2) {
        host.hammerInterleaved({{bank, aggr0}, {bank, aggr1}},
                               {budget / 2, budget / 2});
    }
}

std::vector<std::pair<Bank, Row>>
VendorCPattern::aggressorRows() const
{
    return {{bank, aggr0}, {bank, aggr1}};
}

namespace
{

/** Pick a dummy logical row far away from the victim neighbourhood. */
Row
farDummy(const DiscoveredMapping &mapping, Row victim_phys, int index)
{
    const Row rows = mapping.rows();
    Row phys = (victim_phys + 5'000 + 4 * index) % rows;
    // Stay >= 100 physical rows away from the victim neighbourhood.
    while (std::abs(phys - victim_phys) < 100)
        phys = (phys + 128) % rows;
    return mapping.toLogical(phys);
}

} // namespace

std::vector<Row>
customPatternVictims(const CustomPatternParams &params,
                     const DiscoveredMapping &mapping, Row victim_phys)
{
    std::vector<Row> victims;
    if (params.paired) {
        // Aggressors are the pair rows of victim_phys and victim_phys+2.
        victims.push_back(mapping.toLogical(victim_phys));
        victims.push_back(mapping.toLogical(victim_phys + 2));
    } else {
        victims.push_back(mapping.toLogical(victim_phys));
    }
    return victims;
}

std::unique_ptr<AccessPattern>
makeCustomPattern(const CustomPatternParams &params, SoftMcHost &host,
                  const DiscoveredMapping &mapping, Bank bank,
                  Row victim_phys)
{
    const Timing timing = host.timing();
    Row aggr0_phys;
    Row aggr1_phys;
    if (params.paired) {
        // Paired-row modules: hammering R only disturbs its pair row,
        // so target the pair rows of two victims (§7.3: only
        // odd-numbered aggressor pairs produce flips).
        aggr0_phys = victim_phys ^ 1;
        aggr1_phys = (victim_phys + 2) ^ 1;
    } else {
        aggr0_phys = victim_phys - 1;
        aggr1_phys = victim_phys + 1;
    }
    const Row aggr0 = mapping.toLogical(aggr0_phys);
    const Row aggr1 = mapping.toLogical(aggr1_phys);

    switch (params.vendor) {
      case 'A': {
        std::vector<Row> dummies;
        for (int i = 0; i < params.dummyCount; ++i)
            dummies.push_back(farDummy(mapping, victim_phys, i));
        return std::make_unique<VendorAPattern>(
            bank, aggr0, aggr1, std::move(dummies),
            params.aggressorHammers, timing);
      }
      case 'B': {
        std::vector<std::pair<Bank, Row>> dummy_rows;
        if (params.perBankSampler) {
            // B_TRR3 samples per bank: the dummy must share the
            // aggressors' bank (footnote 13).
            dummy_rows.emplace_back(bank,
                                    farDummy(mapping, victim_phys, 0));
        } else {
            const int total_banks = host.module().spec().banks;
            for (int i = 0; i < params.dummyBanks; ++i) {
                const Bank dummy_bank =
                    (bank + 1 + i) % total_banks;
                dummy_rows.emplace_back(
                    dummy_bank, farDummy(mapping, victim_phys, i));
            }
        }
        return std::make_unique<VendorBPattern>(
            bank, aggr0, aggr1, std::move(dummy_rows),
            params.aggressorHammers, params.trrPeriod, timing);
      }
      case 'C': {
        // The dummy burst fills the whole TRR window except the time
        // reserved for the aggressor hammers, hiding the aggressors
        // from the detection window regardless of its exact length.
        const int aggr_hammers =
            params.aggressorHammers > 0 ? params.aggressorHammers : 80;
        const int burst = std::max(
            0, params.trrPeriod * timing.hammersPerRefi() -
                   2 * aggr_hammers);
        return std::make_unique<VendorCPattern>(
            bank, aggr0, aggr1, farDummy(mapping, victim_phys, 0),
            burst, params.trrPeriod, timing);
      }
      default:
        panic(logFmt("unknown vendor '", params.vendor, "'"));
    }
}

} // namespace utrr
