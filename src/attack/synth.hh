/**
 * @file
 * Seeded non-uniform pattern synthesizer and per-TRR bypass table.
 *
 * Closes the paper's §7.1 loop automatically: instead of hand-crafting
 * one custom pattern per reverse-engineered TRR mechanism, a seeded
 * fuzzer draws Blacksmith-style non-uniform patterns (hammer_pattern.hh)
 * from ranged parameter distributions, evaluates them against the
 * simulated module, re-verifies winners on a fresh substrate, shrinks
 * them with the generic ddmin engine (check/minimizer.hh, dropping
 * whole pattern *elements* instead of program lines), and sweeps the
 * survivor across banks.
 *
 * The per-module search runs as one CampaignRunner job, so a full
 * 45-module synthesis inherits the runner's guarantees: bit-identical
 * verdicts for any --jobs N, write-ahead journaling, resume, and
 * cooperative cancellation. The campaign's deliverable is the
 * **bypass table**: for every TRR version, which pattern class beats
 * the mechanism and at what per-aggressor hammer budget.
 *
 * Everything here is a pure function of (spec, campaign seed, module
 * seed, config): pattern draws come from the job's Rng fork, every
 * evaluation builds a fresh DramModule + SoftMcHost, and no wall-clock
 * value enters a verdict.
 */

#ifndef UTRR_ATTACK_SYNTH_HH
#define UTRR_ATTACK_SYNTH_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "attack/hammer_pattern.hh"
#include "common/rng.hh"
#include "dram/module_spec.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "runner/campaign.hh"

namespace utrr
{

/**
 * Ranged parameter distributions of the fuzzer (the FuzzingParameterSet
 * idea): every drawn pattern stays inside these bounds, which the
 * property tests pin against drawPattern's output.
 */
struct SynthRanges
{
    int minBasePeriod = 2;
    int maxBasePeriod = 24;
    /** Per-row-per-slot ACT bound for explicit (non-fill) amplitudes. */
    int minAmplitude = 8;
    int maxAmplitude = 120;
    int maxDummyRows = 16;
    int maxDummyBanks = 4;
};

/**
 * Draw one random non-uniform pattern. @p trr_period_hint biases the
 * base-period distribution toward the module's TRR-to-REF period (the
 * zenhammer move of seeding pattern lengths from measured refresh
 * behaviour); pass 0 to draw blind. The result always satisfies
 * validatePattern().
 */
HammerPattern drawPattern(Rng &rng, const SynthRanges &ranges,
                          int trr_period_hint);

/** Per-module synthesis knobs. */
struct SynthConfig
{
    /** Candidate patterns drawn before giving up on a module. */
    int attempts = 96;

    /** Victim anchor positions tried per candidate. */
    int positions = 4;

    /** Evaluation window in REF slots (0 = the module's full regular
     *  refresh period — required for high-HC_first modules, where a
     *  shorter window cannot accumulate enough disturbance). */
    int windowRefs = 0;

    /** Warm-up window in REF slots run at a far-away anchor before the
     *  measured window (0 = cold start). A real attack sweep hammers
     *  many positions back to back, so a mechanism's steady state
     *  carries residue of earlier activity — e.g. the vendor-A counter
     *  table holds stale high-count entries that keep fresh aggressors
     *  below the detection maximum. A cold single-position evaluation
     *  hides bypasses that only exist in that steady state. */
    int warmupRefs = 384;

    /** Banks the minimized winner is swept across. */
    int sweepBanks = 4;

    /** ddmin the winner down to its load-bearing elements. */
    bool minimize = true;
    std::size_t minimizeMaxEvaluations = 48;

    /** Bank the search runs in. */
    Bank bank = 0;

    /** DramModule silicon seed for every evaluation substrate. */
    std::uint64_t moduleSeed = 2021;

    /** TRR-to-REF period hint; -1 = take it from the module spec's
     *  ground-truth traits, 0 = search blind. */
    int trrPeriodHint = -1;

    SynthRanges ranges;
};

/** Outcome of evaluating one bound pattern at one anchor. */
struct PatternEval
{
    int flips = 0;
    int vulnerableRows = 0;
};

/**
 * Evaluate @p pattern around physical victim @p anchor on a fresh
 * DramModule + SoftMcHost (seeded with cfg.moduleSeed). Pure: equal
 * arguments produce equal results. @p stop propagates cooperative
 * cancellation into the evaluation host (may throw StopRequested).
 */
PatternEval evaluatePattern(const ModuleSpec &spec,
                            const SynthConfig &cfg,
                            const HammerPattern &pattern, Bank bank,
                            Row anchor,
                            const std::atomic<bool> *stop = nullptr);

/** Per-module synthesis outcome. */
struct SynthModuleResult
{
    /** Did any drawn pattern flip bits (and survive verification)? */
    bool beaten = false;

    /** The minimized winner; meaningful only when beaten. */
    HammerPattern best;
    std::string bestClass;

    int attemptsTried = 0;
    /** 0-based index of the winning draw (-1 = none). */
    int winningAttempt = -1;
    /** Physical victim anchor of the winning evaluation. */
    Row anchor = 0;
    int searchFlips = 0;
    /** Flips of the minimized winner on a fresh substrate. */
    int verifyFlips = 0;

    int elementsBefore = 0;
    int elementsAfter = 0;
    std::size_t minimizeEvaluations = 0;

    /** Aggressor ACTs per aggressor row per base period (the bypass
     *  table's hammer-budget column). */
    int hammersPerAggrPerPeriod = 0;

    /** Flips of the winner re-bound on banks 0..sweepBanks-1. */
    std::vector<int> bankFlips;

    /** Evaluation window actually used (REF slots). */
    int windowRefs = 0;
};

/**
 * Search -> verify -> minimize -> bank-sweep for one module. @p rng is
 * the job's forked stream (consumed); @p stop is polled between
 * evaluations and inside them.
 */
SynthModuleResult
synthesizeForModule(const ModuleSpec &spec, const SynthConfig &cfg,
                    Rng rng, const std::atomic<bool> *stop = nullptr);

/** Render a SynthModuleResult as the job's verdict Json (ints, bools
 *  and strings only: this is byte-compared across --jobs N). */
Json synthVerdict(const ModuleSpec &spec,
                  const SynthModuleResult &result);

/** Campaign-level configuration. */
struct SynthCampaignConfig
{
    SynthConfig synth;

    /** Worker threads; <= 0 selects hardware concurrency. */
    int jobs = 1;
    /** Campaign master seed (forked per module by name). */
    std::uint64_t seed = 1;

    std::string journalPath;
    bool resume = false;
    int maxWatchdogRetries = 2;

    TelemetrySink *telemetry = nullptr;
    const std::atomic<bool> *stopFlag = nullptr;
};

/** Content tag folding every result-affecting synth knob, so stale
 *  journals can never resume into a differently-configured campaign. */
std::string synthContentTag(const SynthConfig &cfg);

/** Run the synthesis campaign over @p specs. */
CampaignResult runSynthCampaign(const std::vector<ModuleSpec> &specs,
                                const SynthCampaignConfig &cfg);

/**
 * Build the bypass table from a finished campaign: a "modules" array
 * (campaign order) and a "by_trr" roll-up (which pattern class beats
 * which mechanism at what hammer budget). Deterministic — part of the
 * jobs-N byte-equality surface.
 */
Json bypassTable(const CampaignResult &result,
                 const std::vector<ModuleSpec> &specs);

/**
 * Fill @p report with the campaign rounds/results plus the
 * "bypass_table" section.
 */
void fillBypassReport(ExperimentReport &report,
                      const CampaignResult &result,
                      const std::vector<ModuleSpec> &specs,
                      const SynthCampaignConfig &cfg);

} // namespace utrr

#endif // UTRR_ATTACK_SYNTH_HH
