#include "attack/sweep.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"

namespace utrr
{

CustomPatternParams
defaultCustomParams(const ModuleSpec &spec)
{
    CustomPatternParams params;
    params.vendor = spec.vendor;
    params.trrPeriod = spec.traits().trrToRefPeriod;
    params.paired = spec.paired();
    switch (spec.vendor) {
      case 'A':
        params.aggressorHammers = 24; // per aggressor per REF (§7.1)
        params.dummyCount = 16;
        break;
      case 'B': {
        // Per aggressor per TRR window (§7.1: 220 for the 4-REF window
        // of B_TRR1, 73 for the 2-REF window of B_TRR3): always leave
        // enough slack for the sampler-diverting dummy activations.
        const Timing timing;
        const int window_budget =
            params.trrPeriod * timing.hammersPerRefi();
        params.aggressorHammers =
            std::min(220, std::max(20, window_budget / 2 - 76));
        params.perBankSampler = spec.trr == TrrVersion::kBTrr3;
        params.dummyBanks = 4;
        break;
      }
      case 'C':
      default:
        params.windowActs =
            spec.trr == TrrVersion::kCTrr3 ? 1'024 : 2'048;
        // Per aggressor per TRR window: an eighth of the window budget
        // each, the rest going to the detection-diverting dummy burst
        // (§7.1). Paired-row modules couple each victim to a single
        // repeat-discounted aggressor, so they get a larger share.
        {
            const Timing timing;
            const int window_budget =
                params.trrPeriod * timing.hammersPerRefi();
            params.aggressorHammers =
                spec.paired() ? 140 : window_budget / 8;
        }
        break;
    }
    return params;
}

CustomPatternParams
customParamsFromProfile(char vendor, const TrrProfile &profile,
                        bool paired)
{
    CustomPatternParams params;
    params.vendor = vendor;
    params.trrPeriod = profile.trrToRefPeriod;
    params.paired = paired;
    switch (vendor) {
      case 'A':
        params.aggressorHammers = 24;
        params.dummyCount = 16;
        break;
      case 'B': {
        const Timing timing;
        const int window_budget =
            params.trrPeriod * timing.hammersPerRefi();
        params.aggressorHammers =
            std::min(220, std::max(20, window_budget / 2 - 76));
        params.perBankSampler = profile.perBank;
        break;
      }
      case 'C':
      default: {
        params.windowActs = profile.detectionWindowActs > 0
            ? profile.detectionWindowActs
            : 2'048;
        const Timing timing;
        params.aggressorHammers =
            paired ? 140
                   : params.trrPeriod * timing.hammersPerRefi() / 8;
        break;
      }
    }
    return params;
}

namespace
{

double
hammersPerAggrPerRef(const CustomPatternParams &params,
                     const Timing & /*timing*/)
{
    switch (params.vendor) {
      case 'A':
        return params.aggressorHammers;
      case 'B':
        return static_cast<double>(params.aggressorHammers) /
            static_cast<double>(params.trrPeriod);
      case 'C':
      default:
        return static_cast<double>(params.aggressorHammers) /
            static_cast<double>(params.trrPeriod);
    }
}

/** Victim anchors uniformly spread over the bank's physical rows. */
std::vector<Row>
anchorPositions(const DiscoveredMapping &mapping, int positions,
                bool paired)
{
    const Row rows = mapping.rows();
    const Row usable = rows - 16;
    std::vector<Row> anchors;
    const int count = std::min<int>(positions, usable / 8);
    for (int i = 0; i < count; ++i) {
        Row anchor = 8 +
            static_cast<Row>((static_cast<std::int64_t>(usable) * i) /
                             count);
        if (paired)
            anchor &= ~1; // paired victims anchor on even rows
        anchors.push_back(anchor);
    }
    return anchors;
}

SweepResult
runSweep(SoftMcHost &host, const DiscoveredMapping &mapping,
         const SweepConfig &config,
         const std::function<std::unique_ptr<AccessPattern>(Row)>
             &make_pattern,
         const std::function<std::vector<Row>(Row)> &victims_of,
         double hammers_per_aggr_per_ref)
{
    const ModuleSpec &spec = host.module().spec();
    const int window = config.windowRefs > 0 ? config.windowRefs
                                             : spec.refreshPeriodRefs;

    AttackEvaluator evaluator(host);
    SweepResult result;
    result.hammersPerAggrPerRef = hammers_per_aggr_per_ref;

    const bool paired = spec.paired();
    for (Row anchor : anchorPositions(mapping, config.positions, paired)) {
        // Re-synchronize the slot boundary with the TRR event cadence.
        const Row align_dummy =
            mapping.toLogical((anchor + 9'000) % mapping.rows());
        evaluator.alignToTrrEvent(config.bank, align_dummy);

        std::unique_ptr<AccessPattern> pattern = make_pattern(anchor);
        std::vector<std::pair<Bank, Row>> victims;
        for (Row victim : victims_of(anchor))
            victims.emplace_back(config.bank, victim);

        const AttackOutcome outcome =
            evaluator.run(*pattern, victims, window);

        ++result.positionsTested;
        for (const auto &[key, flips] : outcome.victimFlips) {
            ++result.victimRowsTested;
            result.flipsPerRow.push_back(static_cast<double>(flips));
            if (flips > 0)
                ++result.vulnerableRows;
            result.maxRowFlips = std::max(result.maxRowFlips, flips);
        }
        for (const auto &[count, n] : outcome.wordFlips.bins())
            result.wordFlips.add(count, n);
    }
    return result;
}

} // namespace

SweepResult
sweepCustomPattern(SoftMcHost &host, const DiscoveredMapping &mapping,
                   const CustomPatternParams &params,
                   const SweepConfig &config)
{
    CustomPatternParams effective = params;
    if (config.aggressorHammers > 0)
        effective.aggressorHammers = config.aggressorHammers;

    return runSweep(
        host, mapping, config,
        [&](Row anchor) {
            return makeCustomPattern(effective, host, mapping,
                                     config.bank, anchor);
        },
        [&](Row anchor) {
            return customPatternVictims(effective, mapping, anchor);
        },
        hammersPerAggrPerRef(effective, host.timing()));
}

std::string
baselineName(BaselineKind kind)
{
    switch (kind) {
      case BaselineKind::kSingleSided:
        return "single-sided";
      case BaselineKind::kDoubleSided:
        return "double-sided";
      case BaselineKind::kManySided9:
        return "9-sided";
      case BaselineKind::kManySided19:
        return "19-sided";
    }
    return "?";
}

SweepResult
sweepBaseline(SoftMcHost &host, const DiscoveredMapping &mapping,
              BaselineKind kind, const SweepConfig &config)
{
    const Timing timing = host.timing();
    const int budget = timing.hammersPerRefi();

    auto make_pattern =
        [&](Row anchor) -> std::unique_ptr<AccessPattern> {
        switch (kind) {
          case BaselineKind::kSingleSided:
            return std::make_unique<SingleSidedPattern>(
                config.bank, mapping.toLogical(anchor - 1), budget);
          case BaselineKind::kDoubleSided:
            return std::make_unique<DoubleSidedPattern>(
                config.bank, mapping.toLogical(anchor - 1),
                mapping.toLogical(anchor + 1), budget / 2);
          case BaselineKind::kManySided9:
          case BaselineKind::kManySided19: {
            const int sides =
                kind == BaselineKind::kManySided9 ? 9 : 19;
            std::vector<Row> aggressors;
            for (int i = 0; i < sides; ++i) {
                aggressors.push_back(
                    mapping.toLogical(anchor - 1 + 2 * i));
            }
            return std::make_unique<ManySidedPattern>(
                config.bank, std::move(aggressors),
                std::max(1, budget / sides));
          }
        }
        panic("unknown baseline kind");
    };

    auto victims_of = [&](Row anchor) {
        return std::vector<Row>{mapping.toLogical(anchor)};
    };

    const double hammers = kind == BaselineKind::kDoubleSided
        ? budget / 2.0
        : static_cast<double>(budget);
    return runSweep(host, mapping, config, make_pattern, victims_of,
                    hammers);
}

} // namespace utrr
