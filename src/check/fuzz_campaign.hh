/**
 * @file
 * Parallel differential fuzzing campaigns on the CampaignRunner.
 *
 * A fuzz campaign is a batch of N independent program checks against
 * one module: job i generates program i from the fuzz seed, runs the
 * oracle suite on it, and reports a deterministic verdict. Scheduling
 * reuses the campaign runner's worker pool, so verdicts (and the merged
 * metrics) are bit-identical for any --jobs value — pinned by the
 * jobs-1-vs-N equivalence test.
 *
 * Violating programs are then re-derived serially (every program is a
 * pure function of (seed, index)) and shrunk with the delta-debugging
 * minimizer, ready to be persisted as corpus entries.
 */

#ifndef UTRR_CHECK_FUZZ_CAMPAIGN_HH
#define UTRR_CHECK_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzzer.hh"
#include "check/oracles.hh"
#include "dram/module_spec.hh"
#include "runner/campaign.hh"

namespace utrr
{

/** Campaign-level knobs. */
struct FuzzCampaignOptions
{
    /** Programs to generate and check. */
    std::uint64_t count = 100;

    /** Worker threads (<= 0 selects hardware concurrency). */
    int jobs = 1;

    /** Fuzz stream seed; program i is (fuzzSeed, i). */
    std::uint64_t fuzzSeed = 1;

    FuzzConfig fuzz;
    OracleConfig oracle;

    /** Shrink violating programs with the ddmin minimizer. */
    bool minimize = true;

    /** Findings minimized/reported in detail (the rest are counted). */
    std::size_t maxFindings = 16;

    /**
     * Write-ahead result journal (empty = off): each checked program
     * is persisted before it counts, and `resume` reloads finished
     * checks so only the missing indices re-run. The journal is keyed
     * to the full fuzz configuration — changing any generation or
     * oracle knob orphans old records (CampaignConfig::contentTag).
     */
    std::string journalPath;
    bool resume = false;

    /** Cooperative-stop flag forwarded to the campaign (may be null). */
    const std::atomic<bool> *stopFlag = nullptr;
};

/** One violating program. */
struct FuzzFinding
{
    /** Program index within the campaign. */
    std::uint64_t index = 0;
    /** Oracle that fired first. */
    std::string oracle;
    std::string detail;
    /**
     * Every distinct oracle that fired on this program, in suite order.
     * `oracle` is only the front of this list; when several planted or
     * real bugs coexist, an earlier-ordered oracle (e.g. differential)
     * can front every finding and hide later catches (e.g. accounting)
     * from the front-only view.
     */
    std::vector<std::string> oracles;
    /** The generated program and its minimized repro. */
    Program program;
    Program minimized;
    std::size_t minimizeEvaluations = 0;
};

/** Campaign outcome. */
struct FuzzCampaignResult
{
    std::uint64_t programs = 0;
    /** Programs with at least one oracle violation. */
    std::uint64_t violating = 0;
    /** Detailed findings (at most maxFindings). */
    std::vector<FuzzFinding> findings;
    /** The underlying runner result (verdicts, merged metrics). */
    CampaignResult campaign;

    bool clean() const { return violating == 0; }
};

/** Run a fuzz campaign against one module. */
FuzzCampaignResult runFuzzCampaign(const ModuleSpec &spec,
                                   const FuzzCampaignOptions &options);

} // namespace utrr

#endif // UTRR_CHECK_FUZZ_CAMPAIGN_HH
