#include "check/reference_module.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace utrr
{

ReferenceModule::ReferenceModule(const ModuleSpec &module_spec,
                                 std::uint64_t seed,
                                 const RetentionModelConfig
                                     *retention_overrides,
                                 Timing timing)
    : spec(module_spec), timingParams(timing)
{
    // Seed derivations must match DramModule's constructor exactly:
    // the reference builds the *same silicon*, then interprets its
    // dynamics independently.
    RetentionModelConfig ret_cfg;
    if (retention_overrides != nullptr)
        ret_cfg = *retention_overrides;

    HammerModelConfig ham_cfg;
    ham_cfg.hcFirst = spec.hcFirst;
    ham_cfg.rowSigma = spec.hcRowSigma;
    ham_cfg.paired = spec.paired();

    gen = std::make_unique<PhysicsGenerator>(ret_cfg, ham_cfg, seed,
                                             spec.rowBits);
    vrtDwellNs = msToNs(ret_cfg.vrtDwellMs);
    vrtHighFactor = ret_cfg.vrtHighFactor;

    Rng map_rng(hashMix(seed ^ 0xdeadbeefULL));
    banks.resize(static_cast<std::size_t>(spec.banks));
    mappings.reserve(static_cast<std::size_t>(spec.banks));
    for (Bank b = 0; b < spec.banks; ++b) {
        mappings.emplace_back(spec.scramble, spec.rowsPerBank,
                              spec.remapsPerBank,
                              map_rng.fork(static_cast<std::uint64_t>(b)));
    }

    trr = makeTrr(spec.trr, spec.banks, hashMix(seed ^ 0x7272ULL));
    trr->attachGroundTruth(&gtStore);
}

std::uint64_t
ReferenceModule::rowRefreshCount(Bank bank) const
{
    UTRR_ASSERT(bank >= 0 && bank < spec.banks, "bank out of range");
    return banks[static_cast<std::size_t>(bank)].rowRefreshes;
}

ReferenceModule::Snapshot
ReferenceModule::snapshotState() const
{
    Snapshot snap;
    snap.banks = banks;
    snap.trr = trr->clone();
    snap.clock = clock;
    snap.refs = refs;
    snap.trrEvents = trrEvents;
    snap.trrVictims = trrVictims;
    return snap;
}

void
ReferenceModule::restoreState(const Snapshot &snap)
{
    UTRR_ASSERT(snap.banks.size() == banks.size(),
                "snapshot from a different module geometry");
    banks = snap.banks;
    // Clone again so the snapshot stays restorable, and point the clone
    // at *this* interpreter's ground-truth sink.
    trr = snap.trr->clone();
    trr->attachGroundTruth(&gtStore);
    clock = snap.clock;
    refs = snap.refs;
    trrEvents = snap.trrEvents;
    trrVictims = snap.trrVictims;
}

ReferenceModule::RefRow &
ReferenceModule::materialize(RefBank &bank, Bank bank_id, Row phys_row,
                             Time when)
{
    UTRR_ASSERT(phys_row >= 0 && phys_row < spec.physRowsPerBank(),
                logFmt("reference row ", phys_row, " out of range"));
    auto it = bank.rows.find(phys_row);
    if (it != bank.rows.end())
        return it->second;

    // A first-touch row counts as freshly refreshed *now*, exactly like
    // DramBank::rowAt. The production bank materializes retention-only
    // physics and attaches hammer cells lazily; the reference generates
    // everything eagerly — fillRetention draws first from the same
    // per-row stream, so the weak cells are identical, and untouched
    // hammer cells are inert at zero charge.
    RefRow row;
    row.phys = gen->generate(bank_id, phys_row);
    row.lastRestore = when;
    row.lastVrtCheck = when;
    row.vrtRng = Rng(hashMix(
        0x9e3779b9ULL ^ (static_cast<std::uint64_t>(bank_id) << 44) ^
        static_cast<std::uint64_t>(phys_row)));
    return bank.rows.emplace(phys_row, std::move(row)).first->second;
}

bool
ReferenceModule::storedBit(const RefRow &row, Col col) const
{
    const auto it = row.overrides.find(col / 64);
    if (it != row.overrides.end())
        return ((it->second >> (col % 64)) & 1) != 0;
    return row.pattern.bit(row.patRow, col);
}

std::uint64_t
ReferenceModule::storedWord(const RefRow &row, int word_idx) const
{
    const auto it = row.overrides.find(word_idx);
    if (it != row.overrides.end())
        return it->second;
    return row.pattern.word(row.patRow, word_idx);
}

Time
ReferenceModule::effectiveRetention(RefRow &row, const WeakCell &cell,
                                    Time when)
{
    const Time retention = cell.retention;
    if (!cell.vrt)
        return retention;

    // The symmetric telegraph process consumes exactly one Bernoulli
    // draw per elapsed interval, mirroring RowState::effectiveRetention
    // draw for draw (the VRT stream is part of the visible state).
    const Time dt = when - row.lastVrtCheck;
    if (dt > 0 && vrtDwellNs > 0) {
        const double p_switch =
            0.5 * (1.0 -
                   std::exp(-2.0 * static_cast<double>(dt) /
                            static_cast<double>(vrtDwellNs)));
        if (row.vrtRng.chance(p_switch))
            row.vrtHigh = !row.vrtHigh;
        row.lastVrtCheck = when;
    }
    if (!row.vrtHigh)
        return retention;
    return static_cast<Time>(static_cast<double>(retention) *
                             vrtHighFactor);
}

void
ReferenceModule::commitDueFlips(RefRow &row, Time when)
{
    const Time elapsed = when - row.lastRestore;

    for (const WeakCell &cell : row.phys.weakCells) {
        if (elapsed <= effectiveRetention(row, cell, when))
            continue;
        if (storedBit(row, cell.col) != cell.chargedValue)
            continue;
        row.flipped.insert(cell.col);
    }

    // Naive full scan: no reliance on the threshold ordering the
    // production commit early-exits on.
    for (const HammerCell &cell : row.phys.hammerCells) {
        if (cell.threshold > row.charge)
            continue;
        if (storedBit(row, cell.col) != cell.chargedValue)
            continue;
        row.flipped.insert(cell.col);
    }
}

void
ReferenceModule::restore(RefRow &row, Time when)
{
    commitDueFlips(row, when);
    row.lastRestore = when;
    row.charge = 0.0;
    row.lastAggressor = kInvalidRow;
}

void
ReferenceModule::disturbOne(RefBank &bank, Bank bank_id, Row aggressor,
                            RefRow &aggr_state, Row victim,
                            double weight, Time when)
{
    if (victim < 0 || victim >= spec.physRowsPerBank())
        return;
    RefRow &v = materialize(bank, bank_id, victim, when);

    const auto &ham = gen->hammerConfig();
    double w = weight;
    if (v.lastAggressor == aggressor)
        w *= ham.repeatWeight;
    if (storedWord(aggr_state, 0) == storedWord(v, 0))
        w *= ham.sameDataWeight;
    v.charge += w;
    v.lastAggressor = aggressor;
}

std::vector<Row>
ReferenceModule::victimRowsOf(Row aggressor_phys) const
{
    std::vector<Row> victims;
    if (spec.paired()) {
        victims.push_back(aggressor_phys ^ 1);
        return victims;
    }
    const int neighbours = spec.traits().neighborsRefreshed;
    const int reach = neighbours >= 4 ? 2 : 1;
    for (int d = 1; d <= reach; ++d) {
        victims.push_back(aggressor_phys - d);
        victims.push_back(aggressor_phys + d);
    }
    return victims;
}

void
ReferenceModule::doAct(Bank bank_id, Row logical_row)
{
    RefBank &bank = banks[static_cast<std::size_t>(bank_id)];
    UTRR_ASSERT(bank.open == kInvalidRow,
                logFmt("reference ACT to open bank ", bank_id));
    const Row phys =
        mappings[static_cast<std::size_t>(bank_id)].toPhysical(
            logical_row);
    bank.open = phys;
    bank.openLogical = logical_row;
    restore(materialize(bank, bank_id, phys, clock), clock);

    RefRow &aggr = bank.rows.at(phys);
    const auto &ham = gen->hammerConfig();
    if (ham.paired) {
        disturbOne(bank, bank_id, phys, aggr, phys ^ 1, 1.0, clock);
    } else {
        disturbOne(bank, bank_id, phys, aggr, phys - 1, 1.0, clock);
        disturbOne(bank, bank_id, phys, aggr, phys + 1, 1.0, clock);
        if (ham.distance2Weight > 0.0) {
            disturbOne(bank, bank_id, phys, aggr, phys - 2,
                       ham.distance2Weight, clock);
            disturbOne(bank, bank_id, phys, aggr, phys + 2,
                       ham.distance2Weight, clock);
        }
    }
    trr->onActivate(bank_id, phys);
}

void
ReferenceModule::doPre(Bank bank_id)
{
    RefBank &bank = banks[static_cast<std::size_t>(bank_id)];
    bank.open = kInvalidRow;
    bank.openLogical = kInvalidRow;
}

void
ReferenceModule::doWr(Bank bank_id, const DataPattern &pattern)
{
    RefBank &bank = banks[static_cast<std::size_t>(bank_id)];
    UTRR_ASSERT(bank.open != kInvalidRow, "reference WR with no open row");
    RefRow &row = bank.rows.at(bank.open);
    // Mirrors RowState::writePattern: pending-but-uncommitted decay is
    // simply erased; the VRT stream state is untouched.
    row.pattern = pattern;
    row.patRow = bank.openLogical;
    row.overrides.clear();
    row.flipped.clear();
    row.lastRestore = clock;
}

void
ReferenceModule::doWrWord(Bank bank_id, int word_idx,
                          std::uint64_t value)
{
    RefBank &bank = banks[static_cast<std::size_t>(bank_id)];
    UTRR_ASSERT(bank.open != kInvalidRow,
                "reference WRW with no open row");
    RefRow &row = bank.rows.at(bank.open);
    row.overrides[word_idx] = value;
    const Col lo = static_cast<Col>(word_idx) * 64;
    auto it = row.flipped.lower_bound(lo);
    while (it != row.flipped.end() && *it < lo + 64)
        it = row.flipped.erase(it);
}

ReferenceRead
ReferenceModule::doRd(Bank bank_id)
{
    RefBank &bank = banks[static_cast<std::size_t>(bank_id)];
    UTRR_ASSERT(bank.open != kInvalidRow, "reference RD with no open row");
    const RefRow &row = bank.rows.at(bank.open);

    ReferenceRead read;
    read.bank = bank_id;
    read.row = bank.openLogical;
    read.when = clock;
    const int words = spec.rowBits / 64;
    read.words.resize(static_cast<std::size_t>(words));
    // Rebuild every word from scratch; no committed-flips shortcut.
    for (int w = 0; w < words; ++w)
        read.words[static_cast<std::size_t>(w)] = storedWord(row, w);
    for (Col col : row.flipped)
        read.words[static_cast<std::size_t>(col / 64)] ^=
            1ULL << (col % 64);
    return read;
}

void
ReferenceModule::doRef()
{
    for (Bank b = 0; b < spec.banks; ++b) {
        UTRR_ASSERT(banks[static_cast<std::size_t>(b)].open ==
                        kInvalidRow,
                    logFmt("reference REF with bank ", b, " open"));
    }

    // Regular sweep: the step covers [step*R/P, (step+1)*R/P). This is
    // the *specified* sweep; the production engine's mutation hook (if
    // compiled in) diverges from it, which is the point.
    const auto period = static_cast<std::uint64_t>(
        spec.refreshPeriodRefs);
    const auto rows64 =
        static_cast<std::uint64_t>(spec.physRowsPerBank());
    const std::uint64_t step = refs % period;
    const Row begin = static_cast<Row>(step * rows64 / period);
    const Row end = static_cast<Row>((step + 1) * rows64 / period);
    ++refs;

    for (auto &bank : banks) {
        // Naive: scan every materialized row instead of a range walk.
        for (auto &[phys, row] : bank.rows) {
            if (phys < begin || phys >= end)
                continue;
            ++bank.rowRefreshes;
            restore(row, clock);
        }
    }

    for (const TrrRefreshAction &action : trr->onRefresh()) {
        RefBank &bank =
            banks[static_cast<std::size_t>(action.bank)];
        ++trrEvents;
        for (Row victim : victimRowsOf(action.aggressorPhysRow)) {
            if (victim < 0 || victim >= spec.physRowsPerBank())
                continue;
            // Mirrors DramBank::refreshRow: the refresh is counted even
            // for untouched rows, which stay implicitly fresh.
            ++bank.rowRefreshes;
            ++trrVictims;
            auto it = bank.rows.find(victim);
            if (it != bank.rows.end())
                restore(it->second, clock);
        }
    }
}

void
ReferenceModule::doWaitRef(Time ns)
{
    const Time deadline = clock + ns;
    while (clock + timingParams.tREFI <= deadline) {
        clock += timingParams.tREFI - timingParams.tRFC;
        doRef();
        clock += timingParams.tRFC;
    }
    clock = std::max(clock, deadline);
}

ReferenceResult
ReferenceModule::execute(const Program &program)
{
    ReferenceResult result;
    result.startTime = clock;
    for (const Instr &instr : program.instructions()) {
        switch (instr.op) {
          case Op::kAct:
            doAct(instr.bank, instr.row);
            clock += timingParams.tRAS;
            break;
          case Op::kPre:
            doPre(instr.bank);
            clock += timingParams.tRP;
            break;
          case Op::kWr:
            doWr(instr.bank, instr.pattern);
            clock += timingParams.tBURST;
            break;
          case Op::kWrWord:
            doWrWord(instr.bank, instr.wordIdx, instr.value);
            clock += timingParams.tBURST;
            break;
          case Op::kRd:
            result.reads.push_back(doRd(instr.bank));
            clock += timingParams.tBURST;
            break;
          case Op::kRef:
            doRef();
            clock += timingParams.tRFC;
            break;
          case Op::kWait:
            UTRR_ASSERT(instr.waitNs >= 0, "cannot wait negative time");
            clock += instr.waitNs;
            break;
          case Op::kWaitRef:
            doWaitRef(instr.waitNs);
            break;
        }
    }
    result.endTime = clock;
    return result;
}

} // namespace utrr
