/**
 * @file
 * Naive reference model for the differential fuzzing oracle.
 *
 * ReferenceModule re-implements the visible semantics of
 * DramModule + SoftMcHost as a straight-line shadow interpreter with
 * none of the production fast paths: no sorted-early-break in the
 * hammer-flip commit, no lower_bound range walks in the refresh sweep,
 * no flips-are-the-answer readout shortcut — every refreshed row is
 * found by scanning all materialized rows, every readout word is
 * rebuilt from pattern + overrides + committed flips from scratch.
 *
 * It deliberately shares only the *parameter* layer with the production
 * model (PhysicsGenerator sampling, RowMapping, DataPattern, the TRR
 * state machines): those define what silicon the module is, not how its
 * dynamics are computed, and the oracle targets the dynamics (charge
 * bookkeeping, refresh sweeps, disturb weighting, VRT stream
 * consumption, readout assembly, the host clock model). Any divergence
 * between DramModule under SoftMcHost and this interpreter on the same
 * program is an oracle violation.
 */

#ifndef UTRR_CHECK_REFERENCE_MODULE_HH
#define UTRR_CHECK_REFERENCE_MODULE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/mapping.hh"
#include "dram/module_spec.hh"
#include "dram/physics.hh"
#include "dram/timing.hh"
#include "obs/metrics.hh"
#include "softmc/command.hh"
#include "trr/trr.hh"

namespace utrr
{

/** One captured READ of the reference interpreter. */
struct ReferenceRead
{
    Bank bank = 0;
    Row row = kInvalidRow; // logical row, as host ReadRecords report it
    Time when = 0;
    /** Full row contents, word by word. */
    std::vector<std::uint64_t> words;
};

/** Result of interpreting one program. */
struct ReferenceResult
{
    std::vector<ReferenceRead> reads;
    Time startTime = 0;
    Time endTime = 0;
};

/**
 * The shadow model. One instance interprets one or more programs
 * sequentially (state persists across execute() calls, mirroring a
 * host + module pair).
 */
class ReferenceModule
{
  private:
    // Mirror state structs lead the class so the public Snapshot type
    // below can aggregate them.

    /** Straight-line mirror of RowState (see src/dram/row.hh). */
    struct RefRow
    {
        RowPhysics phys;
        DataPattern pattern = DataPattern::allZeros();
        Row patRow = 0;
        std::map<int, std::uint64_t> overrides;
        std::set<Col> flipped;
        Time lastRestore = 0;
        double charge = 0.0;
        Row lastAggressor = kInvalidRow;
        Rng vrtRng{0};
        bool vrtHigh = false;
        Time lastVrtCheck = 0;
    };

    struct RefBank
    {
        std::map<Row, RefRow> rows;
        Row open = kInvalidRow;
        Row openLogical = kInvalidRow;
        std::uint64_t rowRefreshes = 0;
    };

  public:
    ReferenceModule(const ModuleSpec &spec, std::uint64_t seed,
                    const RetentionModelConfig *retention_overrides =
                        nullptr,
                    Timing timing = {});

    /** Interpret a program, advancing the shadow clock. */
    ReferenceResult execute(const Program &program);

    /** Current shadow clock (ns). */
    Time now() const { return clock; }

    // --- accounting surface compared by the oracle suite -------------

    /** REF commands interpreted. */
    std::uint64_t refCount() const { return refs; }

    /** TRR refresh actions (detected aggressors) so far. */
    std::uint64_t trrEventCount() const { return trrEvents; }

    /** TRR-induced victim row refreshes so far. */
    std::uint64_t trrVictimRefreshCount() const { return trrVictims; }

    /** Single-row refreshes performed in one bank (regular + TRR). */
    std::uint64_t rowRefreshCount(Bank bank) const;

    // --- snapshot / restore (DESIGN.md §16) ---------------------------

    /**
     * The interpreter's complete restorable state. The naive model
     * earns no COW cleverness: banks are deep-copied (the shadow rows
     * are plain value types), and the TRR mechanism is cloned. As with
     * DramModule, the ground-truth store is an audit trail, not state,
     * and is not captured. Move-only because of the TRR clone.
     */
    struct Snapshot
    {
        std::vector<RefBank> banks;
        std::unique_ptr<TrrMechanism> trr;
        Time clock = 0;
        std::uint64_t refs = 0;
        std::uint64_t trrEvents = 0;
        std::uint64_t trrVictims = 0;
    };

    /** Capture the interpreter's state at this instant. */
    Snapshot snapshotState() const;

    /**
     * Rewind to a snapshot — valid on this instance or on any
     * ReferenceModule built from the same (spec, seed, timing). One
     * snapshot can be restored any number of times.
     */
    void restoreState(const Snapshot &snap);

  private:
    RefRow &materialize(RefBank &bank, Bank bank_id, Row phys_row,
                        Time when);
    bool storedBit(const RefRow &row, Col col) const;
    std::uint64_t storedWord(const RefRow &row, int word_idx) const;
    Time effectiveRetention(RefRow &row, const WeakCell &cell,
                            Time when);
    void commitDueFlips(RefRow &row, Time when);
    void restore(RefRow &row, Time when);
    void disturbOne(RefBank &bank, Bank bank_id, Row aggressor,
                    RefRow &aggr_state, Row victim, double weight,
                    Time when);
    std::vector<Row> victimRowsOf(Row aggressor_phys) const;

    void doAct(Bank bank, Row logical_row);
    void doPre(Bank bank);
    void doWr(Bank bank, const DataPattern &pattern);
    void doWrWord(Bank bank, int word_idx, std::uint64_t value);
    ReferenceRead doRd(Bank bank);
    void doRef();
    void doWaitRef(Time ns);

    ModuleSpec spec;
    Timing timingParams;
    std::unique_ptr<PhysicsGenerator> gen;
    std::vector<RowMapping> mappings;
    std::vector<RefBank> banks;
    std::unique_ptr<TrrMechanism> trr;
    GroundTruthStore gtStore; // sink for the shadow TRR's truth writes
    Time vrtDwellNs = 0;
    double vrtHighFactor = 1.0;
    Time clock = 0;
    std::uint64_t refs = 0;
    std::uint64_t trrEvents = 0;
    std::uint64_t trrVictims = 0;
};

} // namespace utrr

#endif // UTRR_CHECK_REFERENCE_MODULE_HH
