/**
 * @file
 * Oracle suite of the differential fuzzing harness.
 *
 * The suite drives both implementations through the DeviceBackend seam
 * (src/core/device_backend.hh) — SimBackend for the production
 * DramModule + SoftMcHost pair, ReferenceBackend for the naive shadow
 * interpreter. One call runs a program through six independent checks:
 *
 *  1. **Differential**: execute on both backends; every captured READ
 *     (bank, row, time, all row words) and the final clock must match
 *     exactly.
 *  2. **Timing**: replay the sim backend's command trace through the
 *     TimingChecker; the host's fixed per-command cost model must never
 *     produce an illegal DDR4 command stream.
 *  3. **Accounting**: both backends' accounting surfaces (REF count,
 *     TRR events, TRR victim refreshes, per-bank single-row refreshes)
 *     must agree, and the sim module's white-box ground truth must
 *     agree with its own black-box counters.
 *  4. **Determinism**: a second fresh sim backend executing the same
 *     program must produce a bit-identical command trace, read set and
 *     end time.
 *  5. **Execution**: a fresh sim backend forced into the *opposite*
 *     execution tier (compiled vs interpreted, DESIGN.md §17) must
 *     produce the same reads, end time, command trace and accounting —
 *     the compiled-tier fusions are provably bit-identical under fuzz
 *     pressure, from whichever tier the suite itself runs in.
 *  6. **Snapshot**: restoring either backend to its pre-execution
 *     snapshot and re-executing must reproduce the read set, end time
 *     and (for sim) the command trace bit-identically — the
 *     snapshot/fork contract of DESIGN.md §16 under fuzz pressure.
 *
 * Any violation is a real bug in one of the two implementations (or in
 * the spec both encode) — the clean-tree fuzz smoke job pins that the
 * suite stays silent across hundreds of programs per TRR vendor.
 */

#ifndef UTRR_CHECK_ORACLES_HH
#define UTRR_CHECK_ORACLES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/module_spec.hh"
#include "dram/physics.hh"
#include "dram/timing.hh"
#include "softmc/command.hh"

namespace utrr
{

/** Suite configuration. */
struct OracleConfig
{
    /** Silicon seed for both implementations. */
    std::uint64_t moduleSeed = 2021;

    /** Optional retention overrides (nullptr = model defaults). */
    const RetentionModelConfig *retention = nullptr;

    Timing timing{};

    bool checkTiming = true;
    bool checkAccounting = true;
    bool checkDeterminism = true;
    bool checkExecution = true;
    bool checkSnapshot = true;

    /** Extra trace ring slots beyond the static estimate. */
    std::size_t traceMargin = 512;

    /** Violations kept per oracle before truncating the report. */
    std::size_t maxViolationsPerOracle = 8;
};

/** One oracle violation. */
struct OracleViolation
{
    /** "differential", "timing", "accounting", "determinism",
     *  "execution", "snapshot", "internal". */
    std::string oracle;
    std::string detail;
};

/** Result of one suite run. */
struct OracleReport
{
    std::vector<OracleViolation> violations;

    /** Reads the program captured. */
    std::size_t reads = 0;
    /** Final simulated time of the production execution. */
    Time endTime = 0;
    /** Command-trace content hash of the production execution. */
    std::uint64_t traceHash = 0;
    /** Order-sensitive hash over every read (bank, row, when, words). */
    std::uint64_t readHash = 0;

    bool clean() const { return violations.empty(); }

    /** "clean" or "oracle: detail; ..." (first few violations). */
    std::string summary() const;
};

/**
 * Upper bound on the trace events a program records (1 per command,
 * one per REF fired inside a WAITREF). The suite sizes the trace ring
 * with this so the timing and determinism oracles never silently lose
 * events to ring wraparound.
 */
std::size_t estimateTraceEvents(const Program &program,
                                const Timing &timing);

/** Run the full suite on one program. */
OracleReport runOracleSuite(const ModuleSpec &spec,
                            const Program &program,
                            const OracleConfig &cfg = {});

} // namespace utrr

#endif // UTRR_CHECK_ORACLES_HH
