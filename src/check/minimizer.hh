/**
 * @file
 * Delta-debugging minimizer for violating fuzz programs.
 *
 * Classic ddmin over the instruction list: repeatedly delete chunks of
 * instructions (halving granularity as deletions stop succeeding) while
 * the caller's predicate still reports the violation. Every candidate
 * subsequence is passed through repairProgram first, so candidates are
 * always protocol-valid and executable — deleting a PRE cannot produce
 * a program that aborts the process on an ACT-to-open-bank assert.
 *
 * The result is a 1-minimal repro: removing any single remaining
 * instruction (after repair) makes the violation disappear.
 */

#ifndef UTRR_CHECK_MINIMIZER_HH
#define UTRR_CHECK_MINIMIZER_HH

#include <cstddef>
#include <functional>

#include "dram/module_spec.hh"
#include "softmc/command.hh"

namespace utrr
{

/** Returns true while the candidate still exhibits the violation. */
using ProgramPredicate = std::function<bool(const Program &)>;

struct MinimizeOptions
{
    /** Abort minimization after this many predicate evaluations. */
    std::size_t maxEvaluations = 2'000;
};

/**
 * Generic ddmin over an index set [0, count). The predicate receives
 * the sorted kept-index subset and returns true while that subset
 * still exhibits the property being minimized. This is the engine
 * minimizeProgram runs on; the pattern synthesizer reuses it to drop
 * whole pattern *elements* instead of program lines.
 */
using IndexPredicate =
    std::function<bool(const std::vector<std::size_t> &kept)>;

struct DdminResult
{
    /** 1-minimal surviving subset (sorted ascending). */
    std::vector<std::size_t> kept;
    /** Predicate evaluations spent (the initial check included). */
    std::size_t evaluations = 0;
    /** False when maxEvaluations stopped the search early. */
    bool converged = true;
};

/**
 * Shrink the index set [0, @p count) while @p still_failing holds.
 * The predicate must hold for the full set; if it does not, the full
 * set is returned unchanged (with converged = true).
 */
DdminResult ddminIndices(std::size_t count,
                         const IndexPredicate &still_failing,
                         MinimizeOptions options = {});

struct MinimizeResult
{
    /** The minimized (repaired, still-violating) program. */
    Program program;
    /** Predicate evaluations spent. */
    std::size_t evaluations = 0;
    /** False when maxEvaluations stopped the search early. */
    bool converged = true;
};

/**
 * Shrink @p program while @p still_failing holds. The predicate must
 * be true for (the repaired form of) @p program itself; if it is not,
 * the input is returned unchanged.
 */
MinimizeResult minimizeProgram(const ModuleSpec &spec,
                               const Program &program,
                               const ProgramPredicate &still_failing,
                               MinimizeOptions options = {});

} // namespace utrr

#endif // UTRR_CHECK_MINIMIZER_HH
