/**
 * @file
 * Protocol-valid DDR command-program fuzzer.
 *
 * ProgramFuzzer generates randomized but *statically valid* SoftMC
 * programs: ACT only to a precharged bank, WR/WRW/RD only to an open
 * bank, REF/WAITREF only with every bank precharged, all addresses in
 * range. Validity matters because the simulator enforces the protocol
 * with UTRR_ASSERT (an invalid program aborts the process, which is a
 * crash, not an oracle verdict).
 *
 * Generation is fully deterministic: program i of seed s is drawn from
 * Rng(s).fork("fuzz").fork(i), so any program can be regenerated from
 * its (seed, index) coordinates alone — that pair is what fuzz findings
 * and corpus entries record.
 */

#ifndef UTRR_CHECK_FUZZER_HH
#define UTRR_CHECK_FUZZER_HH

#include <cstdint>
#include <string>

#include "dram/module_spec.hh"
#include "softmc/command.hh"

namespace utrr
{

/**
 * Shape of the generated programs. Defaults aim for dense physical
 * interaction: all activity lands in a narrow row window so hammering,
 * disturb coupling, regular-refresh sweeps and TRR victim refreshes all
 * touch the same handful of rows within one program.
 */
struct FuzzConfig
{
    /** Rows written up front (these and their neighbours are read back
     *  at the end). */
    int setupRows = 6;

    /** Body length, drawn uniformly from [minOps, maxOps]. */
    int minOps = 12;
    int maxOps = 48;

    /** Banks used, capped by the module's bank count. */
    Bank maxBanks = 4;

    /** Width of the logical row window all activity lands in. */
    Row rowSpan = 24;

    /** Per-op hammer burst length range. */
    int hammerMin = 50;
    int hammerMax = 3'000;

    /** Max REFs issued back to back by one body op. */
    int refBurstMax = 8;

    /** Plain WAIT duration cap (refresh paused). */
    Time waitMaxNs = 20 * kNsPerMs;

    /** Normal WAITREF duration cap. */
    Time waitRefMaxNs = 120 * kNsPerMs;

    /**
     * Chance that a WAITREF op instead waits a *long* window (up to
     * longWaitRefNs), long enough for retention-weak rows to decay if a
     * refresh mechanism fails to cover them. These are the windows that
     * expose refresh-sweep bugs (e.g. the UTRR_MUTATION off-by-one).
     */
    double longWaitChance = 0.2;
    Time longWaitRefNs = 700 * kNsPerMs;

    /** Cap on epilogue read-back rows (written rows + neighbours). */
    int maxEpilogueReads = 32;
};

/**
 * The generator. Stateless per program; safe to share across campaign
 * workers.
 */
class ProgramFuzzer
{
  public:
    explicit ProgramFuzzer(const ModuleSpec &spec, FuzzConfig cfg = {});

    /** Generate program @p index of stream @p seed. */
    Program generate(std::uint64_t seed, std::uint64_t index) const;

    const FuzzConfig &config() const { return cfg; }

  private:
    ModuleSpec spec;
    FuzzConfig cfg;
};

/**
 * Statically validate a program against the protocol the simulator
 * asserts: open/closed bank discipline and address ranges. Returns ""
 * when valid, else "instr N: message" for the first offence.
 */
std::string validateProgram(const ModuleSpec &spec,
                            const Program &program);

/**
 * Drop every instruction that would violate the protocol given the
 * bank state produced by the instructions kept so far. Deletion-closed
 * repair: any subsequence of a valid program repairs to a valid
 * program, which is what lets the delta-debugging minimizer delete
 * arbitrary chunks.
 */
Program repairProgram(const ModuleSpec &spec, const Program &program);

} // namespace utrr

#endif // UTRR_CHECK_FUZZER_HH
