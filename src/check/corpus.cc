#include "check/corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "softmc/assembler.hh"

namespace utrr
{

namespace
{

bool
parseU64Value(const std::string &token, std::uint64_t &out)
{
    try {
        std::size_t used = 0;
        out = std::stoull(token, &used, 0);
        return used == token.size();
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

std::string
corpusEntryText(const CorpusEntry &entry)
{
    std::ostringstream oss;
    oss << "#! module " << entry.module << "\n";
    oss << "#! module-seed " << entry.moduleSeed << "\n";
    oss << "#! fuzz-seed " << entry.fuzzSeed << "\n";
    oss << "#! fuzz-index " << entry.fuzzIndex << "\n";
    oss << "#! oracle " << entry.oracle << "\n";
    if (!entry.note.empty())
        oss << "#! note " << entry.note << "\n";
    oss << disassembleProgram(entry.program);
    return oss.str();
}

std::string
parseCorpusEntry(const std::string &text, CorpusEntry &out)
{
    std::istringstream iss(text);
    std::string line;
    std::ostringstream program_text;
    int line_no = 0;
    while (std::getline(iss, line)) {
        ++line_no;
        if (line.rfind("#!", 0) != 0) {
            program_text << line << "\n";
            continue;
        }
        std::istringstream fields(line.substr(2));
        std::string key;
        fields >> key;
        std::string value;
        std::getline(fields, value);
        const auto first = value.find_first_not_of(" \t");
        value = first == std::string::npos ? "" : value.substr(first);
        if (key == "module") {
            out.module = value;
        } else if (key == "module-seed" || key == "fuzz-seed" ||
                   key == "fuzz-index") {
            std::uint64_t parsed = 0;
            if (!parseU64Value(value, parsed))
                return logFmt("line ", line_no, ": bad ", key,
                              " value '", value, "'");
            if (key == "module-seed")
                out.moduleSeed = parsed;
            else if (key == "fuzz-seed")
                out.fuzzSeed = parsed;
            else
                out.fuzzIndex = parsed;
        } else if (key == "oracle") {
            out.oracle = value;
        } else if (key == "note") {
            out.note = value;
        }
        // Unknown keys are skipped: older binaries must load corpora
        // written by newer ones.
    }
    if (out.module.empty())
        return "missing '#! module' metadata";

    AssembleResult assembled = assembleProgram(program_text.str());
    if (!assembled.ok())
        return assembled.error;
    out.program = std::move(assembled.program);
    if (out.program.size() == 0)
        return "entry has no instructions";
    return "";
}

std::string
saveCorpusEntry(const CorpusEntry &entry, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return logFmt("cannot open ", path, " for writing");
    os << corpusEntryText(entry);
    os.flush();
    if (!os)
        return logFmt("write to ", path, " failed");
    return "";
}

std::vector<CorpusEntry>
loadCorpusDir(const std::string &dir, std::string *error)
{
    namespace fs = std::filesystem;
    std::vector<CorpusEntry> entries;
    if (error != nullptr)
        error->clear();

    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return entries; // an absent corpus directory is simply empty

    std::vector<fs::path> files;
    for (const auto &item : fs::directory_iterator(dir, ec)) {
        if (item.is_regular_file() && item.path().extension() == ".prog")
            files.push_back(item.path());
    }
    std::sort(files.begin(), files.end());

    for (const fs::path &path : files) {
        std::ifstream is(path);
        std::ostringstream text;
        text << is.rdbuf();

        CorpusEntry entry;
        entry.name = path.stem().string();
        const std::string parse_error =
            parseCorpusEntry(text.str(), entry);
        if (!parse_error.empty()) {
            if (error != nullptr && error->empty())
                *error = logFmt(path.string(), ": ", parse_error);
            continue;
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

} // namespace utrr
