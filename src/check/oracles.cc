#include "check/oracles.hh"

#include <sstream>

#include "check/reference_module.hh"
#include "common/logging.hh"
#include "obs/profiler.hh"
#include "dram/module.hh"
#include "softmc/host.hh"
#include "softmc/timing_checker.hh"

namespace utrr
{

namespace
{

/** FNV-1a over 64-bit values. */
class Fnv
{
  public:
    void
    mix(std::uint64_t value)
    {
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (value >> (byte * 8)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return hash; }

  private:
    std::uint64_t hash = 0xcbf29ce484222325ULL;
};

std::uint64_t
hashReads(const ExecResult &result)
{
    Fnv fnv;
    for (const ReadRecord &read : result.reads) {
        fnv.mix(static_cast<std::uint64_t>(read.bank));
        fnv.mix(static_cast<std::uint64_t>(read.row));
        fnv.mix(static_cast<std::uint64_t>(read.when));
        for (int w = 0; w < read.readout.words(); ++w)
            fnv.mix(read.readout.word(w));
    }
    return fnv.value();
}

class ViolationSink
{
  public:
    ViolationSink(OracleReport &report, std::string oracle,
                  std::size_t cap)
        : report(report), oracle(std::move(oracle)), cap(cap)
    {
    }

    ~ViolationSink()
    {
        if (overflow > 0)
            report.violations.push_back(
                {oracle, logFmt("... and ", overflow, " more")});
    }

    void
    add(const std::string &detail)
    {
        if (seen++ < cap)
            report.violations.push_back({oracle, detail});
        else
            ++overflow;
    }

    bool any() const { return seen > 0; }

  private:
    OracleReport &report;
    std::string oracle;
    std::size_t cap;
    std::size_t seen = 0;
    std::size_t overflow = 0;
};

} // namespace

std::size_t
estimateTraceEvents(const Program &program, const Timing &timing)
{
    std::size_t events = 0;
    for (const Instr &instr : program.instructions()) {
        if (instr.op == Op::kWaitRef) {
            events += static_cast<std::size_t>(
                          instr.waitNs / timing.tREFI) +
                2;
        } else {
            events += 1;
        }
    }
    return events;
}

std::string
OracleReport::summary() const
{
    if (clean())
        return "clean";
    std::ostringstream oss;
    std::size_t shown = 0;
    for (const OracleViolation &v : violations) {
        if (shown++ == 3) {
            oss << "; ... (" << violations.size() << " total)";
            break;
        }
        if (shown > 1)
            oss << "; ";
        oss << v.oracle << ": " << v.detail;
    }
    return oss.str();
}

OracleReport
runOracleSuite(const ModuleSpec &spec, const Program &program,
               const OracleConfig &cfg)
{
    UTRR_PROF_SCOPE("oracle.suite");
    OracleReport report;
    const std::size_t trace_cap =
        estimateTraceEvents(program, cfg.timing) + cfg.traceMargin;

    // Production execution.
    DramModule module(spec, cfg.moduleSeed, cfg.retention);
    SoftMcHost host(module, cfg.timing);
    host.trace().enable(trace_cap);
    const ExecResult exec = host.execute(program);

    report.reads = exec.reads.size();
    report.endTime = exec.endTime;
    report.traceHash = host.trace().contentHash();
    report.readHash = hashReads(exec);

    if (host.trace().dropped() > 0) {
        // A wrapped ring would silently blind the timing and determinism
        // oracles; treat it as a harness bug, not a module bug.
        report.violations.push_back(
            {"internal",
             logFmt("trace ring dropped ", host.trace().dropped(),
                    " events (capacity ", trace_cap, ")")});
    }

    // Reference execution.
    ReferenceModule reference(spec, cfg.moduleSeed, cfg.retention,
                              cfg.timing);
    const ReferenceResult ref = reference.execute(program);

    {
        UTRR_PROF_SCOPE("oracle.differential");
        ViolationSink sink(report, "differential",
                           cfg.maxViolationsPerOracle);
        if (exec.reads.size() != ref.reads.size()) {
            sink.add(logFmt("read count ", exec.reads.size(), " vs ",
                            ref.reads.size(), " in reference"));
        } else {
            for (std::size_t i = 0; i < exec.reads.size(); ++i) {
                const ReadRecord &got = exec.reads[i];
                const ReferenceRead &want = ref.reads[i];
                if (got.bank != want.bank || got.row != want.row ||
                    got.when != want.when) {
                    sink.add(logFmt("read ", i, ": got bank ", got.bank,
                                    " row ", got.row, " at ", got.when,
                                    "ns, reference bank ", want.bank,
                                    " row ", want.row, " at ",
                                    want.when, "ns"));
                    continue;
                }
                const int words = got.readout.words();
                if (static_cast<std::size_t>(words) !=
                    want.words.size()) {
                    sink.add(logFmt("read ", i, ": ", words,
                                    " words vs ", want.words.size(),
                                    " in reference"));
                    continue;
                }
                for (int w = 0; w < words; ++w) {
                    if (got.readout.word(w) ==
                        want.words[static_cast<std::size_t>(w)])
                        continue;
                    sink.add(logFmt(
                        "read ", i, " (bank ", got.bank, " row ",
                        got.row, ") word ", w, ": got 0x", std::hex,
                        got.readout.word(w), " reference 0x",
                        want.words[static_cast<std::size_t>(w)],
                        std::dec));
                    break; // one word per read keeps reports short
                }
            }
        }
        if (exec.endTime != ref.endTime)
            sink.add(logFmt("end time ", exec.endTime, "ns vs ",
                            ref.endTime, "ns in reference"));
    }

    if (cfg.checkTiming) {
        UTRR_PROF_SCOPE("oracle.timing");
        ViolationSink sink(report, "timing",
                           cfg.maxViolationsPerOracle);
        TimingChecker checker(cfg.timing, spec.banks);
        for (const TraceEvent &event : host.trace().events()) {
            switch (event.kind) {
              case TraceKind::kAct:
                checker.onAct(event.bank, event.row, event.start);
                break;
              case TraceKind::kPre:
                checker.onPre(event.bank, event.start);
                break;
              case TraceKind::kWr:
                checker.onWrite(event.bank, event.start);
                break;
              case TraceKind::kRd:
                checker.onRead(event.bank, event.start);
                break;
              case TraceKind::kRef:
                checker.onRef(event.start);
                break;
              default:
                break; // WAIT / phase / fault markers carry no command
            }
        }
        for (const TimingViolation &v : checker.violations())
            sink.add(logFmt(v.rule, " at ", v.when, "ns: ", v.detail));
    }

    if (cfg.checkAccounting) {
        UTRR_PROF_SCOPE("oracle.accounting");
        ViolationSink sink(report, "accounting",
                           cfg.maxViolationsPerOracle);
        if (module.refCount() != reference.refCount())
            sink.add(logFmt("REF count ", module.refCount(), " vs ",
                            reference.refCount(), " in reference"));
        if (module.trrRefreshCount() !=
            reference.trrVictimRefreshCount())
            sink.add(logFmt("TRR victim refreshes ",
                            module.trrRefreshCount(), " vs ",
                            reference.trrVictimRefreshCount(),
                            " in reference"));
        const GroundTruthProbe probe = module.groundTruthProbe();
        if (probe.counter("chip.trr_events") !=
            reference.trrEventCount())
            sink.add(logFmt("ground-truth TRR events ",
                            probe.counter("chip.trr_events"), " vs ",
                            reference.trrEventCount(),
                            " in reference"));
        if (probe.counter("chip.trr_victim_refreshes") !=
            reference.trrVictimRefreshCount())
            sink.add(logFmt(
                "ground-truth TRR victim refreshes ",
                probe.counter("chip.trr_victim_refreshes"), " vs ",
                reference.trrVictimRefreshCount(), " in reference"));
        for (Bank b = 0; b < spec.banks; ++b) {
            if (module.bankAt(b).rowRefreshCount() ==
                reference.rowRefreshCount(b))
                continue;
            sink.add(logFmt("bank ", b, " row refreshes ",
                            module.bankAt(b).rowRefreshCount(), " vs ",
                            reference.rowRefreshCount(b),
                            " in reference"));
        }
    }

    if (cfg.checkDeterminism) {
        UTRR_PROF_SCOPE("oracle.determinism");
        ViolationSink sink(report, "determinism",
                           cfg.maxViolationsPerOracle);
        DramModule module2(spec, cfg.moduleSeed, cfg.retention);
        SoftMcHost host2(module2, cfg.timing);
        host2.trace().enable(trace_cap);
        const ExecResult exec2 = host2.execute(program);
        if (host2.trace().contentHash() != report.traceHash)
            sink.add("command trace differs between identical runs");
        if (exec2.endTime != exec.endTime)
            sink.add(logFmt("end time ", exec2.endTime, "ns vs ",
                            exec.endTime, "ns on rerun"));
        if (hashReads(exec2) != report.readHash)
            sink.add("read-back data differs between identical runs");
    }

    return report;
}

} // namespace utrr
