#include "check/oracles.hh"

#include <sstream>

#include "check/reference_backend.hh"
#include "common/logging.hh"
#include "core/sim_backend.hh"
#include "obs/profiler.hh"
#include "softmc/timing_checker.hh"

namespace utrr
{

namespace
{

class ViolationSink
{
  public:
    ViolationSink(OracleReport &report, std::string oracle,
                  std::size_t cap)
        : report(report), oracle(std::move(oracle)), cap(cap)
    {
    }

    ~ViolationSink()
    {
        if (overflow > 0)
            report.violations.push_back(
                {oracle, logFmt("... and ", overflow, " more")});
    }

    void
    add(const std::string &detail)
    {
        if (seen++ < cap)
            report.violations.push_back({oracle, detail});
        else
            ++overflow;
    }

    bool any() const { return seen > 0; }

  private:
    OracleReport &report;
    std::string oracle;
    std::size_t cap;
    std::size_t seen = 0;
    std::size_t overflow = 0;
};

/** Element-wise read/end-time comparison of two backend results. */
void
compareResults(ViolationSink &sink, const BackendResult &got,
               const BackendResult &want, const std::string &wantName)
{
    if (got.reads.size() != want.reads.size()) {
        sink.add(logFmt("read count ", got.reads.size(), " vs ",
                        want.reads.size(), " in ", wantName));
    } else {
        for (std::size_t i = 0; i < got.reads.size(); ++i) {
            const BackendRead &g = got.reads[i];
            const BackendRead &w = want.reads[i];
            if (g.bank != w.bank || g.row != w.row || g.when != w.when) {
                sink.add(logFmt("read ", i, ": got bank ", g.bank,
                                " row ", g.row, " at ", g.when, "ns, ",
                                wantName, " bank ", w.bank, " row ",
                                w.row, " at ", w.when, "ns"));
                continue;
            }
            if (g.words.size() != w.words.size()) {
                sink.add(logFmt("read ", i, ": ", g.words.size(),
                                " words vs ", w.words.size(), " in ",
                                wantName));
                continue;
            }
            for (std::size_t wd = 0; wd < g.words.size(); ++wd) {
                if (g.words[wd] == w.words[wd])
                    continue;
                sink.add(logFmt("read ", i, " (bank ", g.bank, " row ",
                                g.row, ") word ", wd, ": got 0x",
                                std::hex, g.words[wd], " ", wantName,
                                " 0x", w.words[wd], std::dec));
                break; // one word per read keeps reports short
            }
        }
    }
    if (got.endTime != want.endTime)
        sink.add(logFmt("end time ", got.endTime, "ns vs ",
                        want.endTime, "ns in ", wantName));
}

} // namespace

std::size_t
estimateTraceEvents(const Program &program, const Timing &timing)
{
    std::size_t events = 0;
    for (const Instr &instr : program.instructions()) {
        if (instr.op == Op::kWaitRef) {
            events += static_cast<std::size_t>(
                          instr.waitNs / timing.tREFI) +
                2;
        } else {
            events += 1;
        }
    }
    return events;
}

std::string
OracleReport::summary() const
{
    if (clean())
        return "clean";
    std::ostringstream oss;
    std::size_t shown = 0;
    for (const OracleViolation &v : violations) {
        if (shown++ == 3) {
            oss << "; ... (" << violations.size() << " total)";
            break;
        }
        if (shown > 1)
            oss << "; ";
        oss << v.oracle << ": " << v.detail;
    }
    return oss.str();
}

OracleReport
runOracleSuite(const ModuleSpec &spec, const Program &program,
               const OracleConfig &cfg)
{
    UTRR_PROF_SCOPE("oracle.suite");
    OracleReport report;
    const std::size_t trace_cap =
        estimateTraceEvents(program, cfg.timing) + cfg.traceMargin;

    // Production execution, through the backend seam.
    SimBackend sim(spec, cfg.moduleSeed, cfg.retention, cfg.timing);
    sim.host().trace().enable(trace_cap);
    const std::uint64_t simToken =
        cfg.checkSnapshot ? sim.snapshot() : 0;
    const BackendResult exec = sim.execute(program);

    report.reads = exec.reads.size();
    report.endTime = exec.endTime;
    report.traceHash = sim.host().trace().contentHash();
    report.readHash = hashBackendReads(exec);

    if (sim.host().trace().dropped() > 0) {
        // A wrapped ring would silently blind the timing and determinism
        // oracles; treat it as a harness bug, not a module bug.
        report.violations.push_back(
            {"internal",
             logFmt("trace ring dropped ", sim.host().trace().dropped(),
                    " events (capacity ", trace_cap, ")")});
    }

    // Reference execution.
    ReferenceBackend reference(spec, cfg.moduleSeed, cfg.retention,
                               cfg.timing);
    const std::uint64_t refToken =
        cfg.checkSnapshot ? reference.snapshot() : 0;
    const BackendResult ref = reference.execute(program);

    {
        UTRR_PROF_SCOPE("oracle.differential");
        ViolationSink sink(report, "differential",
                           cfg.maxViolationsPerOracle);
        compareResults(sink, exec, ref, "reference");
    }

    if (cfg.checkTiming) {
        UTRR_PROF_SCOPE("oracle.timing");
        ViolationSink sink(report, "timing",
                           cfg.maxViolationsPerOracle);
        TimingChecker checker(cfg.timing, spec.banks);
        for (const TraceEvent &event : sim.traceEvents()) {
            switch (event.kind) {
              case TraceKind::kAct:
                checker.onAct(event.bank, event.row, event.start);
                break;
              case TraceKind::kPre:
                checker.onPre(event.bank, event.start);
                break;
              case TraceKind::kWr:
                checker.onWrite(event.bank, event.start);
                break;
              case TraceKind::kRd:
                checker.onRead(event.bank, event.start);
                break;
              case TraceKind::kRef:
                checker.onRef(event.start);
                break;
              default:
                break; // WAIT / phase / fault markers carry no command
            }
        }
        for (const TimingViolation &v : checker.violations())
            sink.add(logFmt(v.rule, " at ", v.when, "ns: ", v.detail));
    }

    if (cfg.checkAccounting) {
        UTRR_PROF_SCOPE("oracle.accounting");
        ViolationSink sink(report, "accounting",
                           cfg.maxViolationsPerOracle);
        const BackendAccounting got = sim.accounting();
        const BackendAccounting want = reference.accounting();
        if (got.refs != want.refs)
            sink.add(logFmt("REF count ", got.refs, " vs ", want.refs,
                            " in reference"));
        if (got.trrEvents != want.trrEvents)
            sink.add(logFmt("TRR events ", got.trrEvents, " vs ",
                            want.trrEvents, " in reference"));
        if (got.trrVictimRefreshes != want.trrVictimRefreshes)
            sink.add(logFmt("TRR victim refreshes ",
                            got.trrVictimRefreshes, " vs ",
                            want.trrVictimRefreshes, " in reference"));
        for (Bank b = 0; b < spec.banks; ++b) {
            const std::size_t idx = static_cast<std::size_t>(b);
            if (got.rowRefreshes[idx] == want.rowRefreshes[idx])
                continue;
            sink.add(logFmt("bank ", b, " row refreshes ",
                            got.rowRefreshes[idx], " vs ",
                            want.rowRefreshes[idx], " in reference"));
        }
        // Sim-only: the black-box counters the accounting surface
        // reports must agree with the white-box ground-truth store.
        const GroundTruthProbe probe = sim.module().groundTruthProbe();
        if (probe.counter("chip.trr_events") != got.trrEvents)
            sink.add(logFmt("ground-truth TRR events ",
                            probe.counter("chip.trr_events"), " vs ",
                            got.trrEvents, " in sim accounting"));
        if (probe.counter("chip.trr_victim_refreshes") !=
            got.trrVictimRefreshes)
            sink.add(logFmt(
                "ground-truth TRR victim refreshes ",
                probe.counter("chip.trr_victim_refreshes"), " vs ",
                got.trrVictimRefreshes, " in sim accounting"));
    }

    if (cfg.checkDeterminism) {
        UTRR_PROF_SCOPE("oracle.determinism");
        ViolationSink sink(report, "determinism",
                           cfg.maxViolationsPerOracle);
        SimBackend sim2(spec, cfg.moduleSeed, cfg.retention,
                        cfg.timing);
        sim2.host().trace().enable(trace_cap);
        const BackendResult exec2 = sim2.execute(program);
        if (sim2.host().trace().contentHash() != report.traceHash)
            sink.add("command trace differs between identical runs");
        if (exec2.endTime != exec.endTime)
            sink.add(logFmt("end time ", exec2.endTime, "ns vs ",
                            exec.endTime, "ns on rerun"));
        if (hashBackendReads(exec2) != report.readHash)
            sink.add("read-back data differs between identical runs");
    }

    if (cfg.checkExecution) {
        UTRR_PROF_SCOPE("oracle.execution");
        ViolationSink sink(report, "execution",
                           cfg.maxViolationsPerOracle);
        // Run the program through the *opposite* execution tier
        // (DESIGN.md §17): if the primary sim ran compiled, force the
        // interpreter, and vice versa. Everything observable — reads,
        // end time, command trace, accounting — must be bit-identical.
        const ExecMode other = sim.execMode() == ExecMode::kCompiled
                                   ? ExecMode::kInterpreted
                                   : ExecMode::kCompiled;
        const std::string otherName =
            other == ExecMode::kInterpreted ? "interpreted tier"
                                            : "compiled tier";
        SimBackend sim3(spec, cfg.moduleSeed, cfg.retention,
                        cfg.timing);
        sim3.setExecMode(other);
        sim3.host().trace().enable(trace_cap);
        const BackendResult exec3 = sim3.execute(program);
        compareResults(sink, exec, exec3, otherName);
        if (sim3.host().trace().contentHash() != report.traceHash)
            sink.add(logFmt("command trace differs in ", otherName));
        const BackendAccounting got = sim.accounting();
        const BackendAccounting want = sim3.accounting();
        if (got.refs != want.refs)
            sink.add(logFmt("REF count ", got.refs, " vs ", want.refs,
                            " in ", otherName));
        if (got.trrEvents != want.trrEvents)
            sink.add(logFmt("TRR events ", got.trrEvents, " vs ",
                            want.trrEvents, " in ", otherName));
        if (got.trrVictimRefreshes != want.trrVictimRefreshes)
            sink.add(logFmt("TRR victim refreshes ",
                            got.trrVictimRefreshes, " vs ",
                            want.trrVictimRefreshes, " in ",
                            otherName));
        for (Bank b = 0; b < spec.banks; ++b) {
            const std::size_t idx = static_cast<std::size_t>(b);
            if (got.rowRefreshes[idx] == want.rowRefreshes[idx])
                continue;
            sink.add(logFmt("bank ", b, " row refreshes ",
                            got.rowRefreshes[idx], " vs ",
                            want.rowRefreshes[idx], " in ",
                            otherName));
        }
    }

    if (cfg.checkSnapshot) {
        UTRR_PROF_SCOPE("oracle.snapshot");
        ViolationSink sink(report, "snapshot",
                           cfg.maxViolationsPerOracle);
        sim.restore(simToken);
        const BackendResult replay = sim.execute(program);
        if (hashBackendReads(replay) != report.readHash)
            sink.add("sim read-back differs after snapshot restore");
        if (replay.endTime != exec.endTime)
            sink.add(logFmt("sim end time ", replay.endTime, "ns vs ",
                            exec.endTime, "ns after snapshot restore"));
        if (sim.host().trace().contentHash() != report.traceHash)
            sink.add("sim command trace differs after snapshot restore");
        reference.restore(refToken);
        const BackendResult refReplay = reference.execute(program);
        if (hashBackendReads(refReplay) != hashBackendReads(ref))
            sink.add(
                "reference read-back differs after snapshot restore");
        if (refReplay.endTime != ref.endTime)
            sink.add(logFmt("reference end time ", refReplay.endTime,
                            "ns vs ", ref.endTime,
                            "ns after snapshot restore"));
    }

    return report;
}

} // namespace utrr
