#include "check/minimizer.hh"

#include <algorithm>
#include <numeric>
#include <vector>

#include "check/fuzzer.hh"

namespace utrr
{

namespace
{

Program
toProgram(const std::vector<Instr> &instrs)
{
    Program program;
    for (const Instr &instr : instrs)
        program.push(instr);
    return program;
}

} // namespace

DdminResult
ddminIndices(std::size_t count, const IndexPredicate &still_failing,
             MinimizeOptions options)
{
    DdminResult result;
    result.kept.resize(count);
    std::iota(result.kept.begin(), result.kept.end(), 0);
    if (count == 0)
        return result;

    ++result.evaluations;
    if (!still_failing(result.kept)) {
        // The full set does not fail: nothing to minimize.
        return result;
    }

    std::size_t granularity = 2;
    while (result.kept.size() >= 2) {
        if (result.evaluations >= options.maxEvaluations) {
            result.converged = false;
            break;
        }

        const std::size_t chunk = std::max<std::size_t>(
            1,
            (result.kept.size() + granularity - 1) / granularity);
        bool reduced = false;
        for (std::size_t start = 0; start < result.kept.size();
             start += chunk) {
            if (result.evaluations >= options.maxEvaluations) {
                result.converged = false;
                break;
            }
            std::vector<std::size_t> candidate;
            candidate.reserve(result.kept.size());
            for (std::size_t i = 0; i < result.kept.size(); ++i) {
                if (i < start || i >= start + chunk)
                    candidate.push_back(result.kept[i]);
            }
            if (candidate.empty())
                continue;
            ++result.evaluations;
            if (!still_failing(candidate))
                continue;
            result.kept = std::move(candidate);
            granularity = std::max<std::size_t>(granularity - 1, 2);
            reduced = true;
            break;
        }
        if (!result.converged)
            break;
        if (reduced)
            continue;
        if (chunk <= 1)
            break; // 1-minimal: no single deletion still fails
        granularity = std::min(granularity * 2, result.kept.size());
    }

    return result;
}

MinimizeResult
minimizeProgram(const ModuleSpec &spec, const Program &program,
                const ProgramPredicate &still_failing,
                MinimizeOptions options)
{
    MinimizeResult result;

    const auto repairOf = [&](const std::vector<Instr> &candidate) {
        return repairProgram(spec, toProgram(candidate));
    };

    std::vector<Instr> current = program.instructions();
    {
        Program repaired = repairOf(current);
        ++result.evaluations;
        if (!still_failing(repaired)) {
            // The input does not fail (or fails only through
            // instructions the repair pass removes): nothing to do.
            result.program = program;
            return result;
        }
        current = repaired.instructions();
        result.program = std::move(repaired);
    }

    // Each ddmin pass runs over the *repaired* base of the previous
    // pass: repair may rewrite instructions (insert a PRE, drop a
    // dangling ACT), so indices are only meaningful against the base
    // they were computed from. Iterate to a fixpoint.
    while (!current.empty()) {
        if (result.evaluations >= options.maxEvaluations) {
            result.converged = false;
            break;
        }
        MinimizeOptions inner = options;
        inner.maxEvaluations =
            options.maxEvaluations - result.evaluations;
        const DdminResult pass = ddminIndices(
            current.size(),
            [&](const std::vector<std::size_t> &kept) {
                std::vector<Instr> candidate;
                candidate.reserve(kept.size());
                for (const std::size_t i : kept)
                    candidate.push_back(current[i]);
                ++result.evaluations;
                return still_failing(repairOf(candidate));
            },
            inner);

        if (pass.kept.size() < current.size()) {
            std::vector<Instr> survivors;
            survivors.reserve(pass.kept.size());
            for (const std::size_t i : pass.kept)
                survivors.push_back(current[i]);
            Program repaired = repairOf(survivors);
            if (repaired.size() >= current.size()) {
                // Repair undid the shrink; the previous base stands.
                if (!pass.converged)
                    result.converged = false;
                break;
            }
            current = repaired.instructions();
            result.program = std::move(repaired);
            if (!pass.converged) {
                result.converged = false;
                break;
            }
            continue;
        }
        if (!pass.converged)
            result.converged = false;
        break; // 1-minimal: a full pass deleted nothing
    }

    return result;
}

} // namespace utrr
