#include "check/minimizer.hh"

#include <algorithm>
#include <vector>

#include "check/fuzzer.hh"

namespace utrr
{

namespace
{

Program
toProgram(const std::vector<Instr> &instrs)
{
    Program program;
    for (const Instr &instr : instrs)
        program.push(instr);
    return program;
}

} // namespace

MinimizeResult
minimizeProgram(const ModuleSpec &spec, const Program &program,
                const ProgramPredicate &still_failing,
                MinimizeOptions options)
{
    MinimizeResult result;

    const auto evaluate = [&](const std::vector<Instr> &candidate,
                              Program &repaired_out) {
        repaired_out = repairProgram(spec, toProgram(candidate));
        ++result.evaluations;
        return still_failing(repaired_out);
    };

    std::vector<Instr> current = program.instructions();
    Program repaired;
    if (!evaluate(current, repaired)) {
        // The input does not fail (or fails only through instructions
        // the repair pass removes): nothing to minimize.
        result.program = program;
        return result;
    }
    current = repaired.instructions();
    result.program = repaired;

    std::size_t granularity = 2;
    while (current.size() >= 2) {
        if (result.evaluations >= options.maxEvaluations) {
            result.converged = false;
            break;
        }

        const std::size_t chunk =
            std::max<std::size_t>(1, (current.size() + granularity - 1) /
                                         granularity);
        bool reduced = false;
        for (std::size_t start = 0; start < current.size();
             start += chunk) {
            if (result.evaluations >= options.maxEvaluations) {
                result.converged = false;
                break;
            }
            std::vector<Instr> candidate;
            candidate.reserve(current.size());
            for (std::size_t i = 0; i < current.size(); ++i) {
                if (i < start || i >= start + chunk)
                    candidate.push_back(current[i]);
            }
            if (candidate.empty())
                continue;
            Program candidate_repaired;
            if (!evaluate(candidate, candidate_repaired))
                continue;
            current = candidate_repaired.instructions();
            result.program = candidate_repaired;
            granularity = std::max<std::size_t>(granularity - 1, 2);
            reduced = true;
            break;
        }
        if (reduced)
            continue;
        if (chunk <= 1)
            break; // 1-minimal: no single deletion still fails
        granularity = std::min(granularity * 2, current.size());
    }

    return result;
}

} // namespace utrr
