#include "check/fuzzer.hh"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "dram/timing.hh"

namespace utrr
{

namespace
{

DataPattern
randomPattern(Rng &rng)
{
    switch (rng.uniformInt(0, 5)) {
      case 0:
        return DataPattern::allOnes();
      case 1:
        return DataPattern::allZeros();
      case 2:
        return DataPattern::checkerboard();
      case 3:
        return DataPattern::invCheckerboard();
      case 4:
        return DataPattern::colStripe();
      default:
        return DataPattern::random(rng.next());
    }
}

/** Body op kinds with their selection weights. */
enum class FuzzOp
{
    kAct,
    kPre,
    kRd,
    kWr,
    kWrWord,
    kHammer,
    kRef,
    kWait,
    kWaitRef,
};

constexpr std::pair<FuzzOp, int> kOpWeights[] = {
    {FuzzOp::kAct, 20},   {FuzzOp::kPre, 15},  {FuzzOp::kRd, 12},
    {FuzzOp::kWr, 8},     {FuzzOp::kWrWord, 6}, {FuzzOp::kHammer, 10},
    {FuzzOp::kRef, 8},    {FuzzOp::kWait, 6},  {FuzzOp::kWaitRef, 8},
};

FuzzOp
pickOp(Rng &rng)
{
    int total = 0;
    for (const auto &[op, weight] : kOpWeights)
        total += weight;
    auto roll = static_cast<int>(rng.uniformInt(0, total - 1));
    for (const auto &[op, weight] : kOpWeights) {
        if (roll < weight)
            return op;
        roll -= weight;
    }
    return FuzzOp::kWait;
}

} // namespace

ProgramFuzzer::ProgramFuzzer(const ModuleSpec &module_spec, FuzzConfig config)
    : spec(module_spec), cfg(std::move(config))
{
    UTRR_ASSERT(cfg.setupRows > 0, "need at least one setup row");
    UTRR_ASSERT(cfg.minOps > 0 && cfg.minOps <= cfg.maxOps,
                "bad body op range");
    UTRR_ASSERT(cfg.rowSpan > 2 && cfg.rowSpan < spec.rowsPerBank - 8,
                "row window must fit the bank");
}

Program
ProgramFuzzer::generate(std::uint64_t seed, std::uint64_t index) const
{
    Rng rng = Rng(seed).fork("fuzz").fork(index);
    Program program;

    const Bank bank_count = std::min<Bank>(cfg.maxBanks, spec.banks);
    const Row row_lo = static_cast<Row>(
        rng.uniformInt(2, spec.rowsPerBank - cfg.rowSpan - 3));
    const auto pick_bank = [&] {
        return static_cast<Bank>(rng.uniformInt(0, bank_count - 1));
    };
    const auto pick_row = [&] {
        return static_cast<Row>(
            row_lo + rng.uniformInt(0, cfg.rowSpan - 1));
    };

    // Per-bank open state mirrors what the host will enforce.
    std::vector<Row> open(static_cast<std::size_t>(bank_count),
                          kInvalidRow);
    const auto open_banks = [&] {
        std::vector<Bank> result;
        for (Bank b = 0; b < bank_count; ++b)
            if (open[static_cast<std::size_t>(b)] != kInvalidRow)
                result.push_back(b);
        return result;
    };
    const auto closed_banks = [&] {
        std::vector<Bank> result;
        for (Bank b = 0; b < bank_count; ++b)
            if (open[static_cast<std::size_t>(b)] == kInvalidRow)
                result.push_back(b);
        return result;
    };
    const auto close_all = [&] {
        for (Bank b = 0; b < bank_count; ++b) {
            if (open[static_cast<std::size_t>(b)] != kInvalidRow) {
                program.pre(b);
                open[static_cast<std::size_t>(b)] = kInvalidRow;
            }
        }
    };

    // Prologue: seed the window with known data so decay and disturbance
    // have something observable to corrupt.
    std::set<std::pair<Bank, Row>> written;
    for (int i = 0; i < cfg.setupRows; ++i) {
        const Bank bank = pick_bank();
        const Row row = pick_row();
        program.writeRow(bank, row, randomPattern(rng));
        written.emplace(bank, row);
    }

    const Timing timing;
    const int words = spec.rowBits / 64;
    const int ops = static_cast<int>(
        rng.uniformInt(cfg.minOps, cfg.maxOps));
    for (int i = 0; i < ops; ++i) {
        const FuzzOp op = pickOp(rng);
        switch (op) {
          case FuzzOp::kAct: {
            const auto closed = closed_banks();
            if (closed.empty()) {
                const auto opened = open_banks();
                const Bank bank = opened[static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<int>(opened.size()) - 1))];
                program.pre(bank);
                open[static_cast<std::size_t>(bank)] = kInvalidRow;
                break;
            }
            const Bank bank = closed[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(closed.size()) - 1))];
            const Row row = pick_row();
            program.act(bank, row);
            open[static_cast<std::size_t>(bank)] = row;
            break;
          }
          case FuzzOp::kPre: {
            const auto opened = open_banks();
            if (opened.empty()) {
                const Bank bank = pick_bank();
                const Row row = pick_row();
                program.act(bank, row);
                open[static_cast<std::size_t>(bank)] = row;
                break;
            }
            const Bank bank = opened[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(opened.size()) - 1))];
            program.pre(bank);
            open[static_cast<std::size_t>(bank)] = kInvalidRow;
            break;
          }
          case FuzzOp::kRd:
          case FuzzOp::kWr:
          case FuzzOp::kWrWord: {
            auto opened = open_banks();
            if (opened.empty()) {
                const Bank bank = pick_bank();
                const Row row = pick_row();
                program.act(bank, row);
                open[static_cast<std::size_t>(bank)] = row;
                opened.push_back(bank);
            }
            const Bank bank = opened[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(opened.size()) - 1))];
            const Row row = open[static_cast<std::size_t>(bank)];
            if (op == FuzzOp::kRd) {
                program.rd(bank);
            } else if (op == FuzzOp::kWr) {
                program.wr(bank, randomPattern(rng));
                written.emplace(bank, row);
            } else {
                program.wrWord(
                    bank,
                    static_cast<int>(rng.uniformInt(0, words - 1)),
                    rng.next());
                written.emplace(bank, row);
            }
            break;
          }
          case FuzzOp::kHammer: {
            auto closed = closed_banks();
            if (closed.empty()) {
                const auto opened = open_banks();
                const Bank victim = opened.front();
                program.pre(victim);
                open[static_cast<std::size_t>(victim)] = kInvalidRow;
                closed.push_back(victim);
            }
            const Bank bank = closed[static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<int>(closed.size()) - 1))];
            program.hammer(
                bank, pick_row(),
                static_cast<int>(
                    rng.uniformInt(cfg.hammerMin, cfg.hammerMax)));
            break;
          }
          case FuzzOp::kRef:
            close_all();
            program.ref(static_cast<int>(
                rng.uniformInt(1, cfg.refBurstMax)));
            break;
          case FuzzOp::kWait:
            program.wait(rng.uniformInt(100, cfg.waitMaxNs));
            break;
          case FuzzOp::kWaitRef: {
            close_all();
            const Time ns = rng.chance(cfg.longWaitChance)
                ? rng.uniformInt(cfg.waitRefMaxNs, cfg.longWaitRefNs)
                : rng.uniformInt(timing.tREFI, cfg.waitRefMaxNs);
            program.waitWithRefresh(ns);
            break;
          }
        }
    }

    // Epilogue: read back every written row and its physical-ish
    // neighbours — the surface where decay, disturbance and refresh
    // divergence become visible.
    close_all();
    std::set<std::pair<Bank, Row>> to_read;
    for (const auto &[bank, row] : written) {
        to_read.emplace(bank, row);
        if (row > 0)
            to_read.emplace(bank, row - 1);
        if (row + 1 < spec.rowsPerBank)
            to_read.emplace(bank, row + 1);
    }
    int reads = 0;
    for (const auto &[bank, row] : to_read) {
        if (reads++ >= cfg.maxEpilogueReads)
            break;
        program.readRow(bank, row);
    }
    return program;
}

std::string
validateProgram(const ModuleSpec &spec, const Program &program)
{
    std::vector<Row> open(static_cast<std::size_t>(spec.banks),
                          kInvalidRow);
    const int words = spec.rowBits / 64;
    std::size_t n = 0;
    for (const Instr &instr : program.instructions()) {
        const auto fail = [&](const std::string &msg) {
            return logFmt("instr ", n, " (", instr.toString(), "): ",
                          msg);
        };
        if (instr.op != Op::kRef && instr.op != Op::kWait &&
            instr.op != Op::kWaitRef) {
            if (instr.bank < 0 || instr.bank >= spec.banks)
                return fail("bank out of range");
        }
        auto &bank_open = open[static_cast<std::size_t>(
            std::clamp<Bank>(instr.bank, 0, spec.banks - 1))];
        switch (instr.op) {
          case Op::kAct:
            if (instr.row < 0 || instr.row >= spec.rowsPerBank)
                return fail("row out of range");
            if (bank_open != kInvalidRow)
                return fail("ACT to an open bank");
            bank_open = instr.row;
            break;
          case Op::kPre:
            bank_open = kInvalidRow;
            break;
          case Op::kWr:
          case Op::kRd:
            if (bank_open == kInvalidRow)
                return fail("access to a closed bank");
            break;
          case Op::kWrWord:
            if (bank_open == kInvalidRow)
                return fail("access to a closed bank");
            if (instr.wordIdx < 0 || instr.wordIdx >= words)
                return fail("word index out of range");
            break;
          case Op::kRef:
          case Op::kWaitRef:
            for (Bank b = 0; b < spec.banks; ++b) {
                if (open[static_cast<std::size_t>(b)] != kInvalidRow)
                    return fail(logFmt("refresh with bank ", b,
                                       " open"));
            }
            if (instr.op == Op::kWaitRef && instr.waitNs < 0)
                return fail("negative wait");
            break;
          case Op::kWait:
            if (instr.waitNs < 0)
                return fail("negative wait");
            break;
        }
        ++n;
    }
    return "";
}

Program
repairProgram(const ModuleSpec &spec, const Program &program)
{
    Program repaired;
    std::vector<Row> open(static_cast<std::size_t>(spec.banks),
                          kInvalidRow);
    const int words = spec.rowBits / 64;
    for (const Instr &instr : program.instructions()) {
        if (instr.op != Op::kRef && instr.op != Op::kWait &&
            instr.op != Op::kWaitRef) {
            if (instr.bank < 0 || instr.bank >= spec.banks)
                continue;
        }
        auto &bank_open = open[static_cast<std::size_t>(
            std::clamp<Bank>(instr.bank, 0, spec.banks - 1))];
        switch (instr.op) {
          case Op::kAct:
            if (instr.row < 0 || instr.row >= spec.rowsPerBank)
                continue;
            if (bank_open != kInvalidRow)
                continue;
            bank_open = instr.row;
            break;
          case Op::kPre:
            bank_open = kInvalidRow;
            break;
          case Op::kWr:
          case Op::kRd:
            if (bank_open == kInvalidRow)
                continue;
            break;
          case Op::kWrWord:
            if (bank_open == kInvalidRow || instr.wordIdx < 0 ||
                instr.wordIdx >= words)
                continue;
            break;
          case Op::kRef:
          case Op::kWaitRef: {
            bool any_open = false;
            for (Bank b = 0; b < spec.banks; ++b)
                any_open |=
                    open[static_cast<std::size_t>(b)] != kInvalidRow;
            if (any_open || instr.waitNs < 0)
                continue;
            break;
          }
          case Op::kWait:
            if (instr.waitNs < 0)
                continue;
            break;
        }
        repaired.push(instr);
    }
    return repaired;
}

} // namespace utrr
