#include "check/reference_backend.hh"

#include <stdexcept>

namespace utrr
{

ReferenceBackend::ReferenceBackend(
    const ModuleSpec &spec, std::uint64_t seed,
    const RetentionModelConfig *retention_overrides, Timing timing)
    : moduleSpec(spec), ref(spec, seed, retention_overrides, timing)
{
}

BackendResult
ReferenceBackend::execute(const Program &program)
{
    ReferenceResult exec = ref.execute(program);
    BackendResult result;
    result.startTime = exec.startTime;
    result.endTime = exec.endTime;
    result.reads.reserve(exec.reads.size());
    for (ReferenceRead &read : exec.reads) {
        BackendRead out;
        out.bank = read.bank;
        out.row = read.row;
        out.when = read.when;
        out.words = std::move(read.words);
        result.reads.push_back(std::move(out));
    }
    return result;
}

BackendAccounting
ReferenceBackend::accounting() const
{
    BackendAccounting acc;
    acc.refs = ref.refCount();
    acc.trrEvents = ref.trrEventCount();
    acc.trrVictimRefreshes = ref.trrVictimRefreshCount();
    acc.rowRefreshes.reserve(static_cast<std::size_t>(moduleSpec.banks));
    for (Bank b = 0; b < moduleSpec.banks; ++b)
        acc.rowRefreshes.push_back(ref.rowRefreshCount(b));
    return acc;
}

std::uint64_t
ReferenceBackend::snapshot()
{
    const std::uint64_t token = nextToken++;
    snapshots.emplace(token, ref.snapshotState());
    return token;
}

void
ReferenceBackend::restore(std::uint64_t token)
{
    const auto it = snapshots.find(token);
    if (it == snapshots.end())
        throw std::out_of_range("unknown reference snapshot token");
    ref.restoreState(it->second);
}

void
ReferenceBackend::dropSnapshot(std::uint64_t token)
{
    snapshots.erase(token);
}

} // namespace utrr
