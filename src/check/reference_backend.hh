/**
 * @file
 * DeviceBackend adapter over the naive ReferenceModule interpreter.
 *
 * Gives the shadow model the same seam as the production simulator so
 * the oracle suite and the backend conformance battery can drive both
 * through one interface. The reference interpreter records no command
 * trace (contract point 3: traceEvents() stays empty) — timing-legality
 * checks apply to the backends that do.
 */

#ifndef UTRR_CHECK_REFERENCE_BACKEND_HH
#define UTRR_CHECK_REFERENCE_BACKEND_HH

#include <map>

#include "check/reference_module.hh"
#include "core/device_backend.hh"

namespace utrr
{

class ReferenceBackend : public DeviceBackend
{
  public:
    ReferenceBackend(const ModuleSpec &spec, std::uint64_t seed,
                     const RetentionModelConfig *retention_overrides =
                         nullptr,
                     Timing timing = {});

    std::string name() const override { return "reference"; }
    const ModuleSpec &spec() const override { return moduleSpec; }
    BackendResult execute(const Program &program) override;
    Time now() const override { return ref.now(); }
    BackendAccounting accounting() const override;

    bool supportsSnapshot() const override { return true; }
    std::uint64_t snapshot() override;
    void restore(std::uint64_t token) override;
    void dropSnapshot(std::uint64_t token) override;

    /** The wrapped interpreter (oracle harness escape hatch). */
    ReferenceModule &interpreter() { return ref; }

  private:
    ModuleSpec moduleSpec;
    ReferenceModule ref;
    std::map<std::uint64_t, ReferenceModule::Snapshot> snapshots;
    std::uint64_t nextToken = 1;
};

} // namespace utrr

#endif // UTRR_CHECK_REFERENCE_BACKEND_HH
