/**
 * @file
 * Minimized-repro corpus: persisted fuzz findings.
 *
 * Each corpus entry is one file: `#!` metadata lines (module name,
 * silicon seed, originating fuzz seed/index, the oracle that fired)
 * followed by the minimized program in SoftMC assembler text. `#!`
 * lines start with '#', so the files also assemble as-is in any tool
 * that understands the plain grammar.
 *
 * Checked-in entries under tests/corpus/ are *regression anchors*: they
 * reproduced a violation when they were recorded, were fixed, and
 * test_corpus replays every one of them through the full oracle suite
 * forever after.
 */

#ifndef UTRR_CHECK_CORPUS_HH
#define UTRR_CHECK_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "softmc/command.hh"

namespace utrr
{

/** One corpus entry. */
struct CorpusEntry
{
    /** File stem (derived from the file name on load). */
    std::string name;

    /** Module spec name ("A0" ... "C14"). */
    std::string module;
    /** Silicon seed the violation reproduced under. */
    std::uint64_t moduleSeed = 2021;
    /** (seed, index) coordinates of the originating fuzz program. */
    std::uint64_t fuzzSeed = 0;
    std::uint64_t fuzzIndex = 0;
    /** Oracle that fired when the entry was recorded (or "none" for
     *  hand-written anchors that must stay clean). */
    std::string oracle = "none";
    /** Free-form note. */
    std::string note;

    Program program;
};

/** Render an entry to its file format. */
std::string corpusEntryText(const CorpusEntry &entry);

/**
 * Parse an entry from file text. Returns "" and fills @p out on
 * success, else an error message.
 */
std::string parseCorpusEntry(const std::string &text, CorpusEntry &out);

/** Write an entry to @p path. Returns "" on success, else an error. */
std::string saveCorpusEntry(const CorpusEntry &entry,
                            const std::string &path);

/**
 * Load every "*.prog" file under @p dir (sorted by file name for
 * deterministic replay order). Parse errors are reported through
 * @p error (first failure) and the offending file is skipped.
 */
std::vector<CorpusEntry> loadCorpusDir(const std::string &dir,
                                       std::string *error = nullptr);

} // namespace utrr

#endif // UTRR_CHECK_CORPUS_HH
