#include "check/fuzz_campaign.hh"

#include <algorithm>

#include "check/minimizer.hh"
#include "common/logging.hh"

namespace utrr
{

namespace
{

/**
 * Journal identity of the fuzz job body: every knob that changes what
 * job i computes for the same (seed, index). Folded into the campaign
 * content hash so a journal written under different fuzz or oracle
 * settings can never be resumed into this campaign.
 */
std::string
fuzzContentTag(const FuzzCampaignOptions &options)
{
    const FuzzConfig &f = options.fuzz;
    const OracleConfig &o = options.oracle;
    return logFmt(
        "fuzz:v1:", f.setupRows, ':', f.minOps, ':', f.maxOps, ':',
        f.maxBanks, ':', f.rowSpan, ':', f.hammerMin, ':', f.hammerMax,
        ':', f.refBurstMax, ':', f.waitMaxNs, ':', f.waitRefMaxNs, ':',
        f.longWaitChance, ':', f.longWaitRefNs, ':', f.maxEpilogueReads,
        ":oracle:", o.checkTiming, o.checkAccounting, o.checkDeterminism,
        ':', o.traceMargin, ':', o.maxViolationsPerOracle, ':',
        o.retention != nullptr ? "ret-override" : "ret-default");
}

} // namespace

FuzzCampaignResult
runFuzzCampaign(const ModuleSpec &spec,
                const FuzzCampaignOptions &options)
{
    FuzzCampaignResult result;
    result.programs = options.count;

    const ProgramFuzzer fuzzer(spec, options.fuzz);

    CampaignConfig campaign_cfg;
    campaign_cfg.jobs = options.jobs;
    campaign_cfg.seed = options.fuzzSeed;
    campaign_cfg.moduleSeed = options.oracle.moduleSeed;
    campaign_cfg.journalPath = options.journalPath;
    campaign_cfg.resume = options.resume;
    campaign_cfg.contentTag = fuzzContentTag(options);
    campaign_cfg.stopFlag = options.stopFlag;
    // Jobs never execute on the runner-provided module/host pair: the
    // oracle suite constructs its own fresh pairs (two of them, for the
    // determinism check). Tracing on the runner side stays off.

    std::vector<ModuleSpec> specs(
        static_cast<std::size_t>(options.count), spec);

    const JobFn job = [&](JobContext &ctx) {
        const Program program =
            fuzzer.generate(options.fuzzSeed, ctx.index);
        const OracleReport report =
            runOracleSuite(ctx.spec, program, options.oracle);

        ctx.metrics.counter("fuzz.programs").inc();
        ctx.metrics.counter("fuzz.ops").inc(program.size());
        ctx.metrics.counter("fuzz.reads").inc(report.reads);
        if (!report.clean())
            ctx.metrics.counter("fuzz.violating_programs").inc();
        ctx.metrics.counter("fuzz.violations")
            .inc(report.violations.size());

        JobOutcome outcome;
        outcome.ok = report.clean();
        Json verdict = Json::object();
        verdict["index"] = Json(ctx.index);
        verdict["ops"] = Json(static_cast<std::uint64_t>(program.size()));
        verdict["reads"] =
            Json(static_cast<std::uint64_t>(report.reads));
        verdict["end_ns"] = Json(static_cast<std::int64_t>(
            report.endTime));
        verdict["trace_hash"] = Json(report.traceHash);
        verdict["read_hash"] = Json(report.readHash);
        Json violations = Json::array();
        for (const OracleViolation &v : report.violations) {
            Json entry = Json::object();
            entry["oracle"] = Json(v.oracle);
            entry["detail"] = Json(v.detail);
            violations.push(std::move(entry));
        }
        verdict["violations"] = std::move(violations);
        outcome.verdict = std::move(verdict);
        return outcome;
    };

    const CampaignRunner runner(campaign_cfg);
    result.campaign = runner.run(specs, job);

    // Re-derive the violating programs serially. Every program is a pure
    // function of (fuzzSeed, index), so this is exact, regardless of how
    // the parallel phase was scheduled.
    for (const ModuleResult &module_result : result.campaign.modules) {
        // Pending slots (stop-interrupted / never scheduled) carry no
        // verdict at all — they are resumable, not violating.
        if (!module_result.completed || module_result.ok)
            continue;
        ++result.violating;
        if (result.findings.size() >= options.maxFindings)
            continue;

        FuzzFinding finding;
        finding.index = module_result.index;
        finding.program =
            fuzzer.generate(options.fuzzSeed, module_result.index);

        const OracleReport report =
            runOracleSuite(spec, finding.program, options.oracle);
        if (report.clean())
            continue; // job failed for a non-oracle reason (watchdog)
        finding.oracle = report.violations.front().oracle;
        finding.detail = report.violations.front().detail;
        for (const OracleViolation &v : report.violations) {
            if (std::find(finding.oracles.begin(),
                          finding.oracles.end(),
                          v.oracle) == finding.oracles.end())
                finding.oracles.push_back(v.oracle);
        }

        finding.minimized = finding.program;
        if (options.minimize) {
            const MinimizeResult minimized = minimizeProgram(
                spec, finding.program, [&](const Program &candidate) {
                    return !runOracleSuite(spec, candidate,
                                           options.oracle)
                                .clean();
                });
            finding.minimized = minimized.program;
            finding.minimizeEvaluations = minimized.evaluations;
        }
        result.findings.push_back(std::move(finding));
    }

    return result;
}

} // namespace utrr
