/**
 * @file
 * SoftMC-like host: precise command-level control over a DRAM module.
 *
 * The host offers two equivalent interfaces:
 *  - an immediate API (writeRow, readRow, hammer, refBurst, wait, ...)
 *    used by Row Scout and the TRR Analyzer, and
 *  - a Program executor for recorded command sequences (attack
 *    patterns).
 *
 * Both advance a simulated nanosecond clock per DDR4 timing, mirroring
 * how a real SoftMC program occupies the command bus.
 */

#ifndef UTRR_SOFTMC_HOST_HH
#define UTRR_SOFTMC_HOST_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "dram/module.hh"
#include "dram/timing.hh"
#include "mitigation/mitigation.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "softmc/command.hh"

namespace utrr
{

class FaultInjector;
struct CompiledProgram;

/**
 * Execution tier of the host (DESIGN.md §17). Both tiers are
 * bit-identical by contract — pinned by the fuzz suite's execution
 * oracle — so the choice is purely a speed/debuggability trade-off.
 */
enum class ExecMode
{
    /**
     * Pre-compile programs into fused op streams and batch immediate-API
     * hammer bursts through DramBank::applyActivationBurst (default).
     */
    kCompiled,
    /** One command at a time — the reference path (`--no-compile`). */
    kInterpreted,
};

/**
 * Structured error thrown when a simulated-time watchdog budget set via
 * SoftMcHost::setWatchdogBudget expires. Experiments that can hang under
 * fault injection (e.g. a retry loop whose candidate rows keep dying)
 * catch this and fail the run cleanly instead of spinning forever.
 */
class WatchdogTimeout : public std::runtime_error
{
  public:
    WatchdogTimeout(Time budget_ns, Time deadline_ns, Time now_ns,
                    std::uint64_t acts_issued, std::uint64_t refs_issued);

    /** Budget the watchdog was armed with (ns of simulated time). */
    Time budgetNs;
    /** Simulated deadline that was crossed. */
    Time deadlineNs;
    /** Simulated time when the overrun was detected. */
    Time nowNs;
    /** Commands issued by the host up to the overrun. */
    std::uint64_t actsIssued;
    std::uint64_t refsIssued;
};

/**
 * Structured error thrown when a cooperative-stop flag attached via
 * SoftMcHost::attachStopFlag is observed set at the watchdog poll point
 * (i.e. after any simulated command). Campaign workers let it unwind the
 * whole job body — the job is abandoned, not retried, and the campaign
 * returns a resumable partial result (DESIGN.md §14).
 */
class StopRequested : public std::runtime_error
{
  public:
    explicit StopRequested(Time now_ns);

    /** Simulated time when the stop was observed. */
    Time nowNs;
};

/** One captured READ result. */
struct ReadRecord
{
    Bank bank = 0;
    Row row = kInvalidRow;
    Time when = 0;
    RowReadout readout;
};

/** Result of executing a Program. */
struct ExecResult
{
    std::vector<ReadRecord> reads;
    Time startTime = 0;
    Time endTime = 0;
};

/**
 * The SoftMC host.
 */
class SoftMcHost
{
  public:
    SoftMcHost(DramModule &module, Timing timing = {});

    /** Current simulated time. */
    Time now() const { return clock; }

    /**
     * Stable pointer to the simulated clock, for ProfSpan sim-time
     * attribution (valid for the host's lifetime).
     */
    const Time *clockPtr() const { return &clock; }

    const Timing &timing() const { return timingParams; }
    DramModule &module() { return dram; }

    // --- immediate command API ---------------------------------------

    void act(Bank bank, Row row);
    void pre(Bank bank);
    void wr(Bank bank, const DataPattern &pattern);
    void wrWord(Bank bank, int word_idx, std::uint64_t value);
    RowReadout rd(Bank bank);
    void ref();

    /** Issue @p count REF commands back to back (tRFC apart). */
    void refBurst(int count);

    /** Issue @p count REFs at the default rate (one per tREFI). */
    void refAtDefaultRate(int count);

    /** Advance time with the command bus idle (refresh paused). */
    void wait(Time ns);

    /** Advance time while refreshing at the default rate. */
    void waitWithRefresh(Time ns);

    // --- composites ----------------------------------------------------

    /** ACT + WR + PRE. */
    void writeRow(Bank bank, Row row, const DataPattern &pattern);

    /** ACT + RD + PRE. */
    RowReadout readRow(Bank bank, Row row);

    /** `count` ACT+PRE cycles on one row. */
    void hammer(Bank bank, Row row, int count);

    /**
     * Interleaved hammering (§5.2): activate each aggressor once per
     * round until every aggressor reaches its count.
     */
    void hammerInterleaved(
        const std::vector<std::pair<Bank, Row>> &rows,
        const std::vector<int> &counts);

    /**
     * Cascaded hammering (§5.2): hammer each aggressor to completion
     * before moving to the next.
     */
    void hammerCascaded(const std::vector<std::pair<Bank, Row>> &rows,
                        const std::vector<int> &counts);

    /**
     * Hammer one row in each of several banks simultaneously; bank-level
     * parallelism is bounded by tFAW (footnote 12 of the paper).
     * Advances time by the tFAW-constrained duration.
     */
    void hammerMultiBank(const std::vector<std::pair<Bank, Row>> &rows,
                         int count_each);

    // --- program execution ---------------------------------------------

    /**
     * Execute a recorded program, capturing reads. In kCompiled mode
     * (and with no mitigation or fault injector attached — those need
     * per-command hooks) the program is lowered by ProgramCompiler and
     * run through the batched tier; otherwise it is interpreted one
     * command at a time. Results are bit-identical either way.
     */
    ExecResult execute(const Program &program);

    /** Execute an already-compiled op stream (skips re-lowering). */
    ExecResult executeCompiled(const CompiledProgram &compiled);

    /**
     * Select this host's execution tier. New hosts start in the
     * process-wide default mode (see setDefaultExecMode).
     */
    void setExecMode(ExecMode mode) { execModeV = mode; }
    ExecMode execMode() const { return execModeV; }

    /**
     * Process-wide default tier for hosts created afterwards — the
     * `--no-compile` escape hatch for debugging divergences without
     * plumbing a flag through every experiment layer.
     */
    static void setDefaultExecMode(ExecMode mode);
    static ExecMode defaultExecMode();

    /** Total ACT commands issued through this host. */
    std::uint64_t actCount() const { return acts; }

    /** Total REF commands issued through this host. */
    std::uint64_t refCommandCount() const { return refCmds; }

    /**
     * Attach a controller-side RowHammer mitigation (not owned). The
     * policy sees every ACT/REF this host issues; neighbour refreshes
     * it orders are performed as real ACT+PRE cycles (costing command
     * bus time) before the triggering activation, and throttling
     * delays stall the clock.
     */
    void attachMitigation(ControllerMitigation *policy)
    {
        mitigation = policy;
    }

    ControllerMitigation *attachedMitigation() { return mitigation; }

    // --- fault injection & watchdog -------------------------------------

    /**
     * Attach a fault injector (not owned; nullptr detaches). The host
     * consults it on every REF/WR/RD, hammer cycle and bulk time
     * advance; the injector records its events into this host's command
     * trace and, when a metrics registry is attached, its counters.
     * An injector whose every rate is zero is guaranteed bit-identical
     * to no injector at all.
     */
    void attachFaultInjector(FaultInjector *injector);

    FaultInjector *faultInjector() { return fault; }

    /**
     * Arm (or re-arm) a simulated-time watchdog: once the clock passes
     * now() + @p budget_ns, the next command throws WatchdogTimeout.
     * A non-positive budget disarms.
     */
    void setWatchdogBudget(Time budget_ns);

    /** Disarm the watchdog. */
    void clearWatchdog();

    /** Armed deadline (ns of simulated time), or -1 when disarmed. */
    Time watchdogDeadline() const { return wdDeadline; }

    /**
     * Attach a cooperative-stop flag (not owned; nullptr detaches).
     * Polled at the watchdog poll point — after every simulated
     * command — so a long-running job observes SIGINT/SIGTERM within
     * a few commands and unwinds via StopRequested. The flag is only
     * ever read (relaxed), never written, by the host.
     */
    void attachStopFlag(const std::atomic<bool> *flag)
    {
        stopFlag = flag;
    }

    // --- snapshot / restore (DESIGN.md §16) -----------------------------

    /**
     * The host's restorable state: simulated clock, command counters,
     * watchdog arming and the command trace (self-contained copy).
     * Attached collaborators — metrics, mitigation, fault injector,
     * stop flag — are environment, not state, and stay attached across
     * a restore. Pair with DramModule::snapshot() for a full device
     * snapshot; restoring only one side of the pair tears the clock
     * away from the module state it produced.
     */
    struct Snapshot
    {
        Time clock = 0;
        std::uint64_t acts = 0;
        std::uint64_t refCmds = 0;
        Time wdBudget = 0;
        Time wdDeadline = -1;
        CommandTrace trace;
    };

    /** Capture the host's state at this instant. */
    Snapshot snapshotState() const;

    /**
     * Rewind to a snapshot (taken from this host or from any host over
     * a module restored to the matching DramModule::Snapshot).
     */
    void restoreState(const Snapshot &snap);

    // --- observability --------------------------------------------------

    /**
     * Command trace. Disabled (and free) by default; call
     * trace().enable(capacity) to start recording every command this
     * host issues into a ring buffer.
     */
    CommandTrace &trace() { return cmdTrace; }
    const CommandTrace &trace() const { return cmdTrace; }

    /**
     * Attach a metrics registry (not owned; nullptr detaches). Forwards
     * to the DRAM module — and to an attached fault injector — so
     * substrate and fault metrics land in the same registry.
     */
    void attachMetrics(MetricsRegistry *registry);

    MetricsRegistry *attachedMetrics() { return metrics; }

    /**
     * Publish the substrate's always-on perf tallies into the attached
     * registry: the DRAM fast-path counters (DramModule::
     * publishPerfCounters) plus trace.dropped_events (command-trace
     * ring overflow). Assignment-publish — safe to call repeatedly.
     */
    void publishPerfCounters();

  private:
    void applyMitigation(Bank bank, Row row);
    void hammerOnce(Bank bank, Row row);
    void checkWatchdog();
    ExecResult executeInterpreted(const Program &program);
    /** True when a hammer burst of @p cycles can run fused: compiled
     *  mode, no per-command collaborators, and the watchdog provably
     *  cannot fire before the burst completes. */
    bool canBatchHammer(std::int64_t cycles) const;

    /**
     * Cross-call ActPlan cache for the batched hammer paths. A plan
     * stays valid while the module's planEpoch() is unchanged (no
     * WR/wrWord, no snapshot restore — see DramModule::planEpoch), so
     * repeated hammers of the same rows skip the address translation
     * and per-row victim lookups entirely. Direct-mapped; a conflict
     * just rebuilds. Only batched (compiled-tier) paths consult it —
     * the interpreter path never does.
     */
    struct PlanCacheEntry
    {
        Bank bank = -1;
        Row row = kInvalidRow;
        std::uint64_t epoch = 0; // 0 never matches a live epoch
        DramModule::ActPlan plan;
    };
    static constexpr std::size_t kPlanCacheSlots = 64;
    /** Cache slot for (bank, logical row); entry may be stale/empty. */
    PlanCacheEntry &planSlotFor(Bank bank, Row row);
    /** Valid cached plan or freshly built+cached one. */
    const DramModule::ActPlan &cachedPlan(Bank bank, Row row);

    DramModule &dram;
    Timing timingParams;
    ExecMode execModeV = defaultExecMode();
    Time clock = 0;
    std::uint64_t acts = 0;
    std::uint64_t refCmds = 0;
    ControllerMitigation *mitigation = nullptr;
    FaultInjector *fault = nullptr;
    Time wdBudget = 0;
    Time wdDeadline = -1;
    const std::atomic<bool> *stopFlag = nullptr;
    CommandTrace cmdTrace;
    MetricsRegistry *metrics = nullptr;
    std::vector<PlanCacheEntry> planCache;
};

} // namespace utrr

#endif // UTRR_SOFTMC_HOST_HH
