/**
 * @file
 * DDR4 command-protocol timing checker.
 *
 * The SoftMC host advances its clock with fixed per-command costs; the
 * checker independently validates that the resulting command stream
 * would be legal on a real DDR4 part:
 *
 *  - ACT only to a precharged bank; RD/WR/PRE only to an open bank;
 *  - tRCD between ACT and RD/WR, tRAS between ACT and PRE, tRP
 *    between PRE and ACT;
 *  - tRRD between ACTs to different banks and at most four ACTs per
 *    tFAW window;
 *  - REF only with all banks precharged, tRFC after a REF before the
 *    next command.
 *
 * Violations are collected (not fatal) so tests can assert on them and
 * experiment code can run with `UTRR_ASSERT`-style spot checks.
 */

#ifndef UTRR_SOFTMC_TIMING_CHECKER_HH
#define UTRR_SOFTMC_TIMING_CHECKER_HH

#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/timing.hh"

namespace utrr
{

/** One recorded protocol violation. */
struct TimingViolation
{
    Time when = 0;
    std::string rule;
    std::string detail;
};

/**
 * Validates a DDR command stream against the timing parameters.
 */
class TimingChecker
{
  public:
    TimingChecker(Timing timing, int banks);

    /** Feed commands in issue order with their issue times. */
    void onAct(Bank bank, Row row, Time when);
    void onPre(Bank bank, Time when);
    void onRead(Bank bank, Time when);
    void onWrite(Bank bank, Time when);
    void onRef(Time when);

    const std::vector<TimingViolation> &violations() const
    {
        return log;
    }
    bool clean() const { return log.empty(); }
    void clearViolations() { log.clear(); }

  private:
    void violate(Time when, const std::string &rule,
                 const std::string &detail);
    void checkFaw(Time when);

    struct BankTiming
    {
        bool open = false;
        Time lastAct = kInvalidTime;
        Time lastPre = kInvalidTime;
    };

    Timing timing;
    std::vector<BankTiming> banks;
    std::deque<Time> recentActs; // for the four-activation window
    Time lastActAnyBank = kInvalidTime;
    Time lastRef = kInvalidTime;
    std::vector<TimingViolation> log;
};

} // namespace utrr

#endif // UTRR_SOFTMC_TIMING_CHECKER_HH
