#include "softmc/assembler.hh"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "common/logging.hh"

namespace utrr
{

namespace
{

std::string
upper(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    return text;
}

std::string
lower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream iss(line);
    std::string token;
    while (iss >> token) {
        if (token[0] == '#')
            break;
        tokens.push_back(token);
    }
    return tokens;
}

/** Parse "<n>ns" / "<n>us" / "<n>ms" (also bare ns). */
std::optional<Time>
parseTime(const std::string &token)
{
    std::size_t digits = 0;
    while (digits < token.size() &&
           (std::isdigit(static_cast<unsigned char>(token[digits])) ||
            token[digits] == '.')) {
        ++digits;
    }
    if (digits == 0)
        return std::nullopt;
    const double value = std::stod(token.substr(0, digits));
    const std::string unit = lower(token.substr(digits));
    if (unit.empty() || unit == "ns")
        return static_cast<Time>(value);
    if (unit == "us")
        return static_cast<Time>(value * 1'000.0);
    if (unit == "ms")
        return msToNs(value);
    return std::nullopt;
}

std::optional<long>
parseInt(const std::string &token)
{
    try {
        std::size_t used = 0;
        const long value = std::stol(token, &used);
        if (used != token.size())
            return std::nullopt;
        return value;
    } catch (...) {
        return std::nullopt;
    }
}

/** Parse a 64-bit unsigned value; base 0 accepts 0x-prefixed hex. */
std::optional<std::uint64_t>
parseU64(const std::string &token)
{
    try {
        std::size_t used = 0;
        const std::uint64_t value = std::stoull(token, &used, 0);
        if (used != token.size())
            return std::nullopt;
        return value;
    } catch (...) {
        return std::nullopt;
    }
}

/** Pattern token for the disassembler; random carries its seed. */
std::string
patternToken(const DataPattern &pattern)
{
    switch (pattern.kind()) {
      case DataPattern::Kind::kAllOnes:
        return "ones";
      case DataPattern::Kind::kAllZeros:
        return "zeros";
      case DataPattern::Kind::kCheckerboard:
        return "checker";
      case DataPattern::Kind::kInvCheckerboard:
        return "invchecker";
      case DataPattern::Kind::kColStripe:
        return "stripe";
      case DataPattern::Kind::kRandom:
        return logFmt("random:", pattern.patternSeed());
    }
    return "?";
}

} // namespace

std::optional<DataPattern>
parsePatternToken(const std::string &token)
{
    const std::string name = lower(token);
    if (name == "ones" || name == "all-ones")
        return DataPattern::allOnes();
    if (name == "zeros" || name == "all-zeros")
        return DataPattern::allZeros();
    if (name == "checker" || name == "checkerboard")
        return DataPattern::checkerboard();
    if (name == "invchecker" || name == "inv-checkerboard")
        return DataPattern::invCheckerboard();
    if (name == "stripe" || name == "col-stripe")
        return DataPattern::colStripe();
    if (name.rfind("random:", 0) == 0) {
        const auto seed = parseU64(name.substr(7));
        if (!seed)
            return std::nullopt;
        return DataPattern::random(*seed);
    }
    return std::nullopt;
}

AssembleResult
assembleProgram(const std::string &text)
{
    AssembleResult result;
    std::istringstream stream(text);
    std::string line;
    int line_no = 0;

    auto fail = [&](const std::string &message) {
        result.error =
            logFmt("line ", line_no, ": ", message);
        return result;
    };

    while (std::getline(stream, line)) {
        ++line_no;
        const std::vector<std::string> tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string op = upper(tokens[0]);
        const std::size_t argc = tokens.size() - 1;

        auto arg_int = [&](std::size_t i) { return parseInt(tokens[i]); };

        if (op == "ACT") {
            if (argc != 2)
                return fail("ACT needs <bank> <row>");
            const auto bank = arg_int(1);
            const auto row = arg_int(2);
            if (!bank || !row)
                return fail("bad ACT operands");
            result.program.act(static_cast<Bank>(*bank),
                               static_cast<Row>(*row));
        } else if (op == "PRE") {
            if (argc != 1)
                return fail("PRE needs <bank>");
            const auto bank = arg_int(1);
            if (!bank)
                return fail("bad PRE operand");
            result.program.pre(static_cast<Bank>(*bank));
        } else if (op == "WR") {
            if (argc != 2)
                return fail("WR needs <bank> <pattern>");
            const auto bank = arg_int(1);
            const auto pattern = parsePatternToken(tokens[2]);
            if (!bank || !pattern)
                return fail("bad WR operands");
            result.program.wr(static_cast<Bank>(*bank), *pattern);
        } else if (op == "WRW") {
            if (argc != 3)
                return fail("WRW needs <bank> <word> <value>");
            const auto bank = arg_int(1);
            const auto word = arg_int(2);
            const auto value = parseU64(tokens[3]);
            if (!bank || !word || *word < 0 || !value)
                return fail("bad WRW operands");
            result.program.wrWord(static_cast<Bank>(*bank),
                                  static_cast<int>(*word), *value);
        } else if (op == "RD") {
            if (argc != 1)
                return fail("RD needs <bank>");
            const auto bank = arg_int(1);
            if (!bank)
                return fail("bad RD operand");
            result.program.rd(static_cast<Bank>(*bank));
        } else if (op == "REF") {
            if (argc > 1)
                return fail("REF takes at most a count");
            long count = 1;
            if (argc == 1) {
                const auto parsed = arg_int(1);
                if (!parsed || *parsed < 1)
                    return fail("bad REF count");
                count = *parsed;
            }
            result.program.ref(static_cast<int>(count));
        } else if (op == "WAIT" || op == "WAITREF") {
            if (argc != 1)
                return fail(op + " needs a duration");
            const auto duration = parseTime(tokens[1]);
            if (!duration)
                return fail("bad duration '" + tokens[1] +
                            "' (use ns/us/ms)");
            if (op == "WAIT")
                result.program.wait(*duration);
            else
                result.program.waitWithRefresh(*duration);
        } else if (op == "WRITE") {
            if (argc != 3)
                return fail("WRITE needs <bank> <row> <pattern>");
            const auto bank = arg_int(1);
            const auto row = arg_int(2);
            const auto pattern = parsePatternToken(tokens[3]);
            if (!bank || !row || !pattern)
                return fail("bad WRITE operands");
            result.program.writeRow(static_cast<Bank>(*bank),
                                    static_cast<Row>(*row), *pattern);
        } else if (op == "READ") {
            if (argc != 2)
                return fail("READ needs <bank> <row>");
            const auto bank = arg_int(1);
            const auto row = arg_int(2);
            if (!bank || !row)
                return fail("bad READ operands");
            result.program.readRow(static_cast<Bank>(*bank),
                                   static_cast<Row>(*row));
        } else if (op == "HAMMER") {
            if (argc != 3)
                return fail("HAMMER needs <bank> <row> <count>");
            const auto bank = arg_int(1);
            const auto row = arg_int(2);
            const auto count = arg_int(3);
            if (!bank || !row || !count || *count < 0)
                return fail("bad HAMMER operands");
            result.program.hammer(static_cast<Bank>(*bank),
                                  static_cast<Row>(*row),
                                  static_cast<int>(*count));
        } else {
            return fail("unknown instruction '" + tokens[0] + "'");
        }
    }
    return result;
}

std::string
disassembleProgram(const Program &program)
{
    std::ostringstream oss;
    for (const Instr &instr : program.instructions()) {
        switch (instr.op) {
          case Op::kAct:
            oss << "ACT " << instr.bank << " " << instr.row << "\n";
            break;
          case Op::kPre:
            oss << "PRE " << instr.bank << "\n";
            break;
          case Op::kWr:
            oss << "WR " << instr.bank << " "
                << patternToken(instr.pattern) << "\n";
            break;
          case Op::kWrWord:
            oss << "WRW " << instr.bank << " " << instr.wordIdx << " 0x"
                << std::hex << instr.value << std::dec << "\n";
            break;
          case Op::kRd:
            oss << "RD " << instr.bank << "\n";
            break;
          case Op::kRef:
            oss << "REF\n";
            break;
          case Op::kWait:
            oss << "WAIT " << instr.waitNs << "ns\n";
            break;
          case Op::kWaitRef:
            oss << "WAITREF " << instr.waitNs << "ns\n";
            break;
        }
    }
    return oss.str();
}

} // namespace utrr
