/**
 * @file
 * Text assembler for SoftMC programs.
 *
 * The real SoftMC exposes a small instruction set that test programs
 * are written in; this assembler provides the equivalent for the
 * simulated host, so experiments can be expressed as plain text files
 * (see examples/softmc_repl.cc) and captured command sequences can be
 * round-tripped.
 *
 * Grammar (one instruction per line, '#' starts a comment):
 *
 *   ACT <bank> <row>
 *   PRE <bank>
 *   WR <bank> <pattern>         pattern: ones|zeros|checker|invchecker|
 *                                         stripe|random:<seed>
 *   WRW <bank> <word> <value>   write one 64-bit word (value may be 0x hex)
 *   RD <bank>
 *   REF [count]
 *   WAIT <time>                 time: <n>ns | <n>us | <n>ms
 *   WAITREF <time>              wait while refreshing at the default rate
 *   WRITE <bank> <row> <pattern>   composite ACT+WR+PRE
 *   READ <bank> <row>              composite ACT+RD+PRE
 *   HAMMER <bank> <row> <count>    composite ACT+PRE cycles
 */

#ifndef UTRR_SOFTMC_ASSEMBLER_HH
#define UTRR_SOFTMC_ASSEMBLER_HH

#include <optional>
#include <string>

#include "softmc/command.hh"

namespace utrr
{

/** Result of assembling a program text. */
struct AssembleResult
{
    Program program;
    /** Empty on success; otherwise "line N: message". */
    std::string error;
    bool ok() const { return error.empty(); }
};

/** Assemble program text into a Program. */
AssembleResult assembleProgram(const std::string &text);

/** Parse a data-pattern token ("ones", "checker", "random:7", ...). */
std::optional<DataPattern> parsePatternToken(const std::string &token);

/** Render a Program back to assembler text (one instr per line). */
std::string disassembleProgram(const Program &program);

} // namespace utrr

#endif // UTRR_SOFTMC_ASSEMBLER_HH
