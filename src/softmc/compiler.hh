/**
 * @file
 * Program pre-compilation: lower a softmc::Program into a pre-resolved
 * op stream (DESIGN.md §17).
 *
 * The interpreter dispatches one DDR command at a time; most recorded
 * programs are dominated by a handful of shapes — hammer loops
 * (ACT+PRE pairs), whole-row accesses (ACT/WR/PRE, ACT/RD/PRE) and REF
 * runs. The compiler recognizes those shapes once, ahead of execution,
 * and emits compact batch ops carrying a repeat count, so the executor
 * makes one dispatch per batch and the DRAM substrate can apply a whole
 * hammer burst through DramBank::applyActivationBurst instead of one
 * ACT at a time. Compilation never changes behaviour: the op stream
 * replays the exact command sequence, and SoftMcHost falls back to the
 * interpreter whenever a collaborator (mitigation, fault injector)
 * needs per-command hooks.
 */

#ifndef UTRR_SOFTMC_COMPILER_HH
#define UTRR_SOFTMC_COMPILER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/data_pattern.hh"
#include "softmc/command.hh"

namespace utrr
{

/** Opcodes of the compiled tier. The first four are fused batches. */
enum class CompiledOpKind : std::uint8_t
{
    kHammer,   // `count` ACT+PRE cycles of (bank, row)
    kWriteRow, // ACT + whole-row WR + PRE
    kReadRow,  // ACT + RD capture + PRE
    kRefBurst, // `count` back-to-back REFs
    // Pass-through ops for everything the compiler leaves alone.
    kAct,
    kPre,
    kWr,
    kWrWord,
    kRd,
    kWait,
    kWaitRef,
};

/**
 * One compiled op. Kept flat and small (patterns live interned in the
 * CompiledProgram pool) so the executor's dispatch loop walks a dense
 * array instead of fat Instr records.
 */
struct CompiledOp
{
    CompiledOpKind kind = CompiledOpKind::kWait;
    Bank bank = 0;
    Row row = kInvalidRow;
    /** Repeat count for kHammer / kRefBurst. */
    int count = 0;
    /** Index into CompiledProgram::patterns for kWriteRow / kWr. */
    int patternIdx = -1;
    int wordIdx = 0;
    std::uint64_t value = 0;
    Time waitNs = 0;
};

/** A lowered program: dense op stream plus the interned pattern pool. */
struct CompiledProgram
{
    std::vector<CompiledOp> ops;
    std::vector<DataPattern> patterns;
    /** Instruction count of the source program. */
    std::size_t sourceSize = 0;
    /** RD captures the stream will produce (read-vector reserve). */
    std::size_t readCount = 0;
};

/**
 * Lowers validated programs into compiled op streams. Stateless; the
 * compile is a pure function of the program.
 */
class ProgramCompiler
{
  public:
    static CompiledProgram compile(const Program &program);
};

} // namespace utrr

#endif // UTRR_SOFTMC_COMPILER_HH
