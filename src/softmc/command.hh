/**
 * @file
 * DDR command-level instruction set of the SoftMC-like host.
 *
 * U-TRR requires issuing individual DDR commands at precisely controlled
 * times (paper §3.3). A Program is a recorded sequence of such commands
 * plus explicit waits; the Host executes it against a DramModule while
 * advancing a simulated nanosecond clock according to DDR4 timing.
 */

#ifndef UTRR_SOFTMC_COMMAND_HH
#define UTRR_SOFTMC_COMMAND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/data_pattern.hh"

namespace utrr
{

/** DDR command / host directive opcodes. */
enum class Op
{
    kAct,     // activate <bank, row>
    kPre,     // precharge <bank>
    kWr,      // write whole-row pattern into the open row of <bank>
    kWrWord,  // write one 64-bit word
    kRd,      // read the open row of <bank>, capturing a readout
    kRef,     // refresh command
    kWait,    // advance time without issuing commands (refresh paused)
    kWaitRef, // advance time while issuing REF every tREFI
};

/** One instruction of a SoftMC program. */
struct Instr
{
    Op op = Op::kWait;
    Bank bank = 0;
    Row row = kInvalidRow;
    DataPattern pattern{};
    int wordIdx = 0;
    std::uint64_t value = 0;
    Time waitNs = 0;

    std::string toString() const;
};

/**
 * A recorded DDR command sequence.
 */
class Program
{
  public:
    Program &act(Bank bank, Row row);
    Program &pre(Bank bank);
    Program &wr(Bank bank, const DataPattern &pattern);
    Program &wrWord(Bank bank, int word_idx, std::uint64_t value);
    Program &rd(Bank bank);
    Program &ref(int count = 1);
    Program &wait(Time ns);
    Program &waitWithRefresh(Time ns);

    /** Composite: ACT + WR + PRE. */
    Program &writeRow(Bank bank, Row row, const DataPattern &pattern);

    /** Composite: ACT + RD + PRE. */
    Program &readRow(Bank bank, Row row);

    /** Composite: `count` ACT+PRE hammers of one row. */
    Program &hammer(Bank bank, Row row, int count);

    /** Append an already-built instruction (program surgery: fuzzing
     *  mutators, delta-debugging minimizers). */
    Program &push(const Instr &instr);

    const std::vector<Instr> &instructions() const { return instrs; }
    std::size_t size() const { return instrs.size(); }

  private:
    std::vector<Instr> instrs;
};

} // namespace utrr

#endif // UTRR_SOFTMC_COMMAND_HH
