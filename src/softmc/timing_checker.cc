#include "softmc/timing_checker.hh"

#include "common/logging.hh"

namespace utrr
{

TimingChecker::TimingChecker(Timing timing, int bank_count)
    : timing(timing)
{
    UTRR_ASSERT(bank_count > 0, "need banks");
    banks.resize(static_cast<std::size_t>(bank_count));
}

void
TimingChecker::violate(Time when, const std::string &rule,
                       const std::string &detail)
{
    log.push_back({when, rule, detail});
}

void
TimingChecker::checkFaw(Time when)
{
    while (!recentActs.empty() &&
           recentActs.front() <= when - timing.tFAW) {
        recentActs.pop_front();
    }
    if (static_cast<int>(recentActs.size()) >= 4) {
        violate(when, "tFAW",
                logFmt("5th ACT within ", timing.tFAW, " ns"));
    }
    recentActs.push_back(when);
}

void
TimingChecker::onAct(Bank bank, Row /*row*/, Time when)
{
    auto &state = banks.at(static_cast<std::size_t>(bank));
    if (state.open)
        violate(when, "state", logFmt("ACT to open bank ", bank));
    if (state.lastPre != kInvalidTime &&
        when - state.lastPre < timing.tRP) {
        violate(when, "tRP",
                logFmt("ACT ", when - state.lastPre,
                       " ns after PRE on bank ", bank));
    }
    if (lastRef != kInvalidTime && when - lastRef < timing.tRFC)
        violate(when, "tRFC", "ACT during refresh");
    checkFaw(when);
    state.open = true;
    state.lastAct = when;
    lastActAnyBank = when;
}

void
TimingChecker::onPre(Bank bank, Time when)
{
    auto &state = banks.at(static_cast<std::size_t>(bank));
    // PRE to a precharged bank is legal (a NOP), so only timing checks.
    if (state.open && state.lastAct != kInvalidTime &&
        when - state.lastAct < timing.tRAS) {
        violate(when, "tRAS",
                logFmt("PRE ", when - state.lastAct,
                       " ns after ACT on bank ", bank));
    }
    state.open = false;
    state.lastPre = when;
}

void
TimingChecker::onRead(Bank bank, Time when)
{
    auto &state = banks.at(static_cast<std::size_t>(bank));
    if (!state.open) {
        violate(when, "state", logFmt("RD to closed bank ", bank));
        return;
    }
    if (state.lastAct != kInvalidTime &&
        when - state.lastAct < timing.tRCD) {
        violate(when, "tRCD",
                logFmt("RD ", when - state.lastAct,
                       " ns after ACT on bank ", bank));
    }
}

void
TimingChecker::onWrite(Bank bank, Time when)
{
    auto &state = banks.at(static_cast<std::size_t>(bank));
    if (!state.open) {
        violate(when, "state", logFmt("WR to closed bank ", bank));
        return;
    }
    if (state.lastAct != kInvalidTime &&
        when - state.lastAct < timing.tRCD) {
        violate(when, "tRCD",
                logFmt("WR ", when - state.lastAct,
                       " ns after ACT on bank ", bank));
    }
}

void
TimingChecker::onRef(Time when)
{
    for (std::size_t b = 0; b < banks.size(); ++b) {
        if (banks[b].open) {
            violate(when, "state",
                    logFmt("REF with bank ", b, " open"));
        }
    }
    if (lastRef != kInvalidTime && when - lastRef < timing.tRFC)
        violate(when, "tRFC", "REF during refresh");
    lastRef = when;
}

} // namespace utrr
