#include "softmc/compiler.hh"

namespace utrr
{

namespace
{

/** Intern @p pattern into the pool, returning its index. */
int
internPattern(std::vector<DataPattern> &pool, const DataPattern &pattern)
{
    for (std::size_t i = 0; i < pool.size(); ++i) {
        if (pool[i] == pattern)
            return static_cast<int>(i);
    }
    pool.push_back(pattern);
    return static_cast<int>(pool.size() - 1);
}

} // namespace

CompiledProgram
ProgramCompiler::compile(const Program &program)
{
    CompiledProgram out;
    const std::vector<Instr> &ins = program.instructions();
    const std::size_t n = ins.size();
    out.sourceSize = n;
    out.ops.reserve(n);

    std::size_t i = 0;
    while (i < n) {
        const Instr &a = ins[i];

        if (a.op == Op::kAct && i + 1 < n) {
            const Instr &b = ins[i + 1];

            // A run of [ACT, PRE] pairs on one (bank, row) is a hammer
            // loop: collapse it into a single op carrying the count.
            if (b.op == Op::kPre && b.bank == a.bank) {
                int count = 0;
                std::size_t j = i;
                while (j + 1 < n && ins[j].op == Op::kAct &&
                       ins[j].bank == a.bank && ins[j].row == a.row &&
                       ins[j + 1].op == Op::kPre &&
                       ins[j + 1].bank == a.bank) {
                    ++count;
                    j += 2;
                }
#ifdef UTRR_MUTATION_FUSION_OFF_BY_ONE
                // Planted bug for CI mutation-sanity: a fused hammer
                // burst silently loses one cycle. The compiled-vs-
                // interpreted execution oracle must catch this.
                if (count > 1)
                    --count;
#endif
                CompiledOp op;
                op.kind = CompiledOpKind::kHammer;
                op.bank = a.bank;
                op.row = a.row;
                op.count = count;
                out.ops.push_back(op);
                i = j;
                continue;
            }

            // [ACT, WR, PRE] / [ACT, RD, PRE] on one bank fuse into a
            // single whole-row access op.
            if (i + 2 < n && b.bank == a.bank &&
                ins[i + 2].op == Op::kPre && ins[i + 2].bank == a.bank) {
                if (b.op == Op::kWr) {
                    CompiledOp op;
                    op.kind = CompiledOpKind::kWriteRow;
                    op.bank = a.bank;
                    op.row = a.row;
                    op.patternIdx =
                        internPattern(out.patterns, b.pattern);
                    out.ops.push_back(op);
                    i += 3;
                    continue;
                }
                if (b.op == Op::kRd) {
                    CompiledOp op;
                    op.kind = CompiledOpKind::kReadRow;
                    op.bank = a.bank;
                    op.row = a.row;
                    out.ops.push_back(op);
                    ++out.readCount;
                    i += 3;
                    continue;
                }
            }
        }

        // Consecutive REFs become one burst op.
        if (a.op == Op::kRef) {
            int count = 0;
            while (i < n && ins[i].op == Op::kRef) {
                ++count;
                ++i;
            }
            CompiledOp op;
            op.kind = CompiledOpKind::kRefBurst;
            op.count = count;
            out.ops.push_back(op);
            continue;
        }

        // Everything else passes through one-to-one.
        CompiledOp op;
        op.bank = a.bank;
        op.row = a.row;
        switch (a.op) {
          case Op::kAct:
            op.kind = CompiledOpKind::kAct;
            break;
          case Op::kPre:
            op.kind = CompiledOpKind::kPre;
            break;
          case Op::kWr:
            op.kind = CompiledOpKind::kWr;
            op.patternIdx = internPattern(out.patterns, a.pattern);
            break;
          case Op::kWrWord:
            op.kind = CompiledOpKind::kWrWord;
            op.wordIdx = a.wordIdx;
            op.value = a.value;
            break;
          case Op::kRd:
            op.kind = CompiledOpKind::kRd;
            ++out.readCount;
            break;
          case Op::kWait:
            op.kind = CompiledOpKind::kWait;
            op.waitNs = a.waitNs;
            break;
          case Op::kWaitRef:
            op.kind = CompiledOpKind::kWaitRef;
            op.waitNs = a.waitNs;
            break;
          case Op::kRef:
            // Handled by the run-fusion above.
            break;
        }
        out.ops.push_back(op);
        ++i;
    }
    return out;
}

} // namespace utrr
