#include "softmc/command.hh"

#include "common/logging.hh"

namespace utrr
{

std::string
Instr::toString() const
{
    switch (op) {
      case Op::kAct:
        return logFmt("ACT b", bank, " r", row);
      case Op::kPre:
        return logFmt("PRE b", bank);
      case Op::kWr:
        return logFmt("WR b", bank, " ", pattern.name());
      case Op::kWrWord:
        return logFmt("WRW b", bank, " w", wordIdx);
      case Op::kRd:
        return logFmt("RD b", bank);
      case Op::kRef:
        return "REF";
      case Op::kWait:
        return logFmt("WAIT ", waitNs, "ns");
      case Op::kWaitRef:
        return logFmt("WAITREF ", waitNs, "ns");
    }
    return "?";
}

Program &
Program::act(Bank bank, Row row)
{
    Instr instr;
    instr.op = Op::kAct;
    instr.bank = bank;
    instr.row = row;
    instrs.push_back(instr);
    return *this;
}

Program &
Program::pre(Bank bank)
{
    Instr instr;
    instr.op = Op::kPre;
    instr.bank = bank;
    instrs.push_back(instr);
    return *this;
}

Program &
Program::wr(Bank bank, const DataPattern &pattern)
{
    Instr instr;
    instr.op = Op::kWr;
    instr.bank = bank;
    instr.pattern = pattern;
    instrs.push_back(instr);
    return *this;
}

Program &
Program::wrWord(Bank bank, int word_idx, std::uint64_t value)
{
    Instr instr;
    instr.op = Op::kWrWord;
    instr.bank = bank;
    instr.wordIdx = word_idx;
    instr.value = value;
    instrs.push_back(instr);
    return *this;
}

Program &
Program::rd(Bank bank)
{
    Instr instr;
    instr.op = Op::kRd;
    instr.bank = bank;
    instrs.push_back(instr);
    return *this;
}

Program &
Program::ref(int count)
{
    for (int i = 0; i < count; ++i) {
        Instr instr;
        instr.op = Op::kRef;
        instrs.push_back(instr);
    }
    return *this;
}

Program &
Program::wait(Time ns)
{
    Instr instr;
    instr.op = Op::kWait;
    instr.waitNs = ns;
    instrs.push_back(instr);
    return *this;
}

Program &
Program::waitWithRefresh(Time ns)
{
    Instr instr;
    instr.op = Op::kWaitRef;
    instr.waitNs = ns;
    instrs.push_back(instr);
    return *this;
}

Program &
Program::writeRow(Bank bank, Row row, const DataPattern &pattern)
{
    return act(bank, row).wr(bank, pattern).pre(bank);
}

Program &
Program::readRow(Bank bank, Row row)
{
    return act(bank, row).rd(bank).pre(bank);
}

Program &
Program::hammer(Bank bank, Row row, int count)
{
    for (int i = 0; i < count; ++i)
        act(bank, row).pre(bank);
    return *this;
}

Program &
Program::push(const Instr &instr)
{
    instrs.push_back(instr);
    return *this;
}

} // namespace utrr
