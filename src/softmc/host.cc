#include "softmc/host.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "obs/profiler.hh"

namespace utrr
{

WatchdogTimeout::WatchdogTimeout(Time budget_ns, Time deadline_ns,
                                 Time now_ns, std::uint64_t acts_issued,
                                 std::uint64_t refs_issued)
    : std::runtime_error(logFmt(
          "watchdog budget of ", budget_ns, "ns exceeded: now=", now_ns,
          "ns deadline=", deadline_ns, "ns after ", acts_issued,
          " ACTs / ", refs_issued, " REFs")),
      budgetNs(budget_ns), deadlineNs(deadline_ns), nowNs(now_ns),
      actsIssued(acts_issued), refsIssued(refs_issued)
{
}

StopRequested::StopRequested(Time now_ns)
    : std::runtime_error(
          logFmt("cooperative stop requested at ", now_ns, "ns")),
      nowNs(now_ns)
{
}

SoftMcHost::SoftMcHost(DramModule &module, Timing timing)
    : dram(module), timingParams(timing)
{
}

void
SoftMcHost::attachMetrics(MetricsRegistry *registry)
{
    metrics = registry;
    dram.attachMetrics(registry);
    if (fault != nullptr)
        fault->attachMetrics(registry);
}

void
SoftMcHost::publishPerfCounters()
{
    dram.publishPerfCounters();
    if (metrics != nullptr)
        metrics->counter("trace.dropped_events").value = cmdTrace.dropped();
}

void
SoftMcHost::attachFaultInjector(FaultInjector *injector)
{
    if (fault != nullptr && fault != injector)
        fault->attachTrace(nullptr);
    fault = injector;
    if (fault != nullptr) {
        fault->attachTrace(&cmdTrace);
        if (metrics != nullptr)
            fault->attachMetrics(metrics);
    }
}

void
SoftMcHost::setWatchdogBudget(Time budget_ns)
{
    if (budget_ns <= 0) {
        clearWatchdog();
        return;
    }
    wdBudget = budget_ns;
    wdDeadline = clock + budget_ns;
}

void
SoftMcHost::clearWatchdog()
{
    wdBudget = 0;
    wdDeadline = -1;
}

SoftMcHost::Snapshot
SoftMcHost::snapshotState() const
{
    Snapshot snap;
    snap.clock = clock;
    snap.acts = acts;
    snap.refCmds = refCmds;
    snap.wdBudget = wdBudget;
    snap.wdDeadline = wdDeadline;
    snap.trace = cmdTrace;
    return snap;
}

void
SoftMcHost::restoreState(const Snapshot &snap)
{
    clock = snap.clock;
    acts = snap.acts;
    refCmds = snap.refCmds;
    wdBudget = snap.wdBudget;
    wdDeadline = snap.wdDeadline;
    cmdTrace = snap.trace;
    // An attached fault injector records into the host's trace through
    // a cached pointer; the copy assignment above did not move the
    // object, so the pointer stays valid.
}

void
SoftMcHost::checkWatchdog()
{
    // The stop flag shares the watchdog's poll point (after every
    // command); the null check keeps the fault-free hot path to one
    // predictable branch.
    if (stopFlag != nullptr &&
        stopFlag->load(std::memory_order_relaxed)) {
        throw StopRequested(clock);
    }
    if (wdDeadline >= 0 && clock > wdDeadline)
        throw WatchdogTimeout(wdBudget, wdDeadline, clock, acts, refCmds);
}

void
SoftMcHost::applyMitigation(Bank bank, Row row)
{
    const MitigationAction action =
        mitigation->onActivate(bank, row, clock);
    clock += action.delayNs;
    // Victim refreshes are real ACT+PRE cycles issued while the bank
    // is still precharged (before the triggering activation opens it).
    const Row rows = dram.spec().rowsPerBank;
    for (Row victim : action.refreshRows) {
        if (victim < 0 || victim >= rows)
            continue;
        dram.act(bank, victim, clock);
        dram.pre(bank, clock);
        cmdTrace.record(TraceKind::kAct, bank, victim, clock,
                        timingParams.tRAS);
        clock += timingParams.hammerCycle();
        ++acts;
    }
}

void
SoftMcHost::act(Bank bank, Row row)
{
    if (mitigation != nullptr)
        applyMitigation(bank, row);
    dram.act(bank, row, clock);
    cmdTrace.record(TraceKind::kAct, bank, row, clock, timingParams.tRAS);
    clock += timingParams.tRAS;
    ++acts;
    checkWatchdog();
}

void
SoftMcHost::pre(Bank bank)
{
    dram.pre(bank, clock);
    cmdTrace.record(TraceKind::kPre, bank, kInvalidRow, clock,
                    timingParams.tRP);
    clock += timingParams.tRP;
}

void
SoftMcHost::wr(Bank bank, const DataPattern &pattern)
{
    // A dropped WR occupies the bus but leaves the row's old contents
    // in place; the consumer sees it as massive unexpected flips.
    if (fault == nullptr || !fault->shouldDropWr(bank, clock))
        dram.wr(bank, pattern, clock);
    cmdTrace.record(TraceKind::kWr, bank, kInvalidRow, clock,
                    timingParams.tBURST);
    clock += timingParams.tBURST;
}

void
SoftMcHost::wrWord(Bank bank, int word_idx, std::uint64_t value)
{
    dram.wrWord(bank, word_idx, value);
    cmdTrace.record(TraceKind::kWr, bank, kInvalidRow, clock,
                    timingParams.tBURST);
    clock += timingParams.tBURST;
}

RowReadout
SoftMcHost::rd(Bank bank)
{
    if (fault != nullptr)
        fault->onRowRead(dram, bank, dram.bankAt(bank).openRow(), clock);
    RowReadout readout = dram.rd(bank);
    if (fault != nullptr)
        fault->corruptReadout(readout, bank, clock);
    cmdTrace.record(TraceKind::kRd, bank, kInvalidRow, clock,
                    timingParams.tBURST);
    clock += timingParams.tBURST;
    return readout;
}

void
SoftMcHost::ref()
{
    if (mitigation != nullptr)
        mitigation->onRefresh(clock);
    // A dropped REF occupies the bus and counts on the host side, but
    // the module never performs the refresh sweep.
    if (fault == nullptr || !fault->shouldDropRef(clock))
        dram.ref(clock);
    cmdTrace.record(TraceKind::kRef, 0, kInvalidRow, clock,
                    timingParams.tRFC);
    clock += timingParams.tRFC;
    ++refCmds;
    checkWatchdog();
}

void
SoftMcHost::refBurst(int count)
{
    UTRR_PROF_SCOPE_SIM("softmc.ref_burst", &clock);
    for (int i = 0; i < count; ++i)
        ref();
}

void
SoftMcHost::refAtDefaultRate(int count)
{
    UTRR_PROF_SCOPE_SIM("softmc.ref_default_rate", &clock);
    const Time start = clock;
    for (int i = 0; i < count; ++i) {
        ref();
        Time gap = timingParams.tREFI - timingParams.tRFC;
        if (fault != nullptr)
            gap += fault->refJitter(clock);
        clock += gap;
    }
    if (fault != nullptr)
        fault->onTimeAdvance(dram, start, clock);
    checkWatchdog();
}

void
SoftMcHost::wait(Time ns)
{
    UTRR_PROF_SCOPE_SIM("softmc.wait", &clock);
    UTRR_ASSERT(ns >= 0, "cannot wait negative time");
    cmdTrace.record(TraceKind::kWait, 0, kInvalidRow, clock, ns);
    const Time start = clock;
    clock += ns;
    if (fault != nullptr)
        fault->onTimeAdvance(dram, start, clock);
    checkWatchdog();
}

void
SoftMcHost::waitWithRefresh(Time ns)
{
    UTRR_PROF_SCOPE_SIM("softmc.wait_refresh", &clock);
    const Time start = clock;
    const Time deadline = clock + ns;
    while (clock + timingParams.tREFI <= deadline) {
        Time gap = timingParams.tREFI - timingParams.tRFC;
        if (fault != nullptr)
            gap += fault->refJitter(clock);
        clock += gap;
        ref();
    }
    clock = std::max(clock, deadline);
    if (fault != nullptr)
        fault->onTimeAdvance(dram, start, clock);
    checkWatchdog();
}

void
SoftMcHost::writeRow(Bank bank, Row row, const DataPattern &pattern)
{
    act(bank, row);
    wr(bank, pattern);
    pre(bank);
}

RowReadout
SoftMcHost::readRow(Bank bank, Row row)
{
    act(bank, row);
    RowReadout readout = rd(bank);
    pre(bank);
    return readout;
}

void
SoftMcHost::hammerOnce(Bank bank, Row row)
{
    if (fault != nullptr && fault->shouldDropHammerAct(bank, row, clock)) {
        // The cycle burns bus time and counts on the host side, but the
        // module never sees the activation (no disturbance, no TRR
        // sampling).
        cmdTrace.record(TraceKind::kAct, bank, row, clock,
                        timingParams.tRAS);
        clock += timingParams.hammerCycle();
        ++acts;
        checkWatchdog();
        return;
    }
    act(bank, row);
    pre(bank);
}

void
SoftMcHost::hammer(Bank bank, Row row, int count)
{
    UTRR_PROF_SCOPE_SIM("softmc.hammer", &clock);
    for (int i = 0; i < count; ++i)
        hammerOnce(bank, row);
}

void
SoftMcHost::hammerInterleaved(
    const std::vector<std::pair<Bank, Row>> &rows,
    const std::vector<int> &counts)
{
    UTRR_PROF_SCOPE_SIM("softmc.hammer_interleaved", &clock);
    UTRR_ASSERT(rows.size() == counts.size(),
                "one count per aggressor row");
    bool remaining = true;
    std::vector<int> left(counts);
    while (remaining) {
        remaining = false;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (left[i] <= 0)
                continue;
            hammerOnce(rows[i].first, rows[i].second);
            if (--left[i] > 0)
                remaining = true;
        }
    }
}

void
SoftMcHost::hammerCascaded(const std::vector<std::pair<Bank, Row>> &rows,
                           const std::vector<int> &counts)
{
    UTRR_PROF_SCOPE_SIM("softmc.hammer_cascaded", &clock);
    UTRR_ASSERT(rows.size() == counts.size(),
                "one count per aggressor row");
    for (std::size_t i = 0; i < rows.size(); ++i)
        hammer(rows[i].first, rows[i].second, counts[i]);
}

void
SoftMcHost::hammerMultiBank(
    const std::vector<std::pair<Bank, Row>> &rows, int count_each)
{
    UTRR_PROF_SCOPE_SIM("softmc.hammer_multibank", &clock);
    // Banks hammer in parallel; throughput is limited by both the
    // per-bank cycle time and the four-activation window.
    const auto banks = static_cast<std::int64_t>(rows.size());
    if (banks == 0 || count_each <= 0)
        return;

    const Time start = clock;
    Time penalty = 0;
    for (int i = 0; i < count_each; ++i) {
        for (const auto &[bank, row] : rows) {
            if (mitigation != nullptr) {
                const Time before = clock;
                applyMitigation(bank, row);
                penalty += clock - before;
                clock = before;
            }
            cmdTrace.record(TraceKind::kAct, bank, row, clock,
                            timingParams.tRAS);
            ++acts;
            if (fault != nullptr &&
                fault->shouldDropHammerAct(bank, row, clock))
                continue; // bus slot burnt, module never sees the ACT
            dram.act(bank, row, clock);
            dram.pre(bank, clock);
        }
    }
    const Time per_bank_bound =
        static_cast<Time>(count_each) * timingParams.hammerCycle();
    const Time tfaw_bound = static_cast<Time>(count_each) * banks *
        timingParams.tFAW / 4;
    clock = start + std::max(per_bank_bound, tfaw_bound) + penalty;
    checkWatchdog();
}

ExecResult
SoftMcHost::execute(const Program &program)
{
    UTRR_PROF_SCOPE_SIM("softmc.execute", &clock);
    ExecResult result;
    result.startTime = clock;
    for (const Instr &instr : program.instructions()) {
        switch (instr.op) {
          case Op::kAct:
            act(instr.bank, instr.row);
            break;
          case Op::kPre:
            pre(instr.bank);
            break;
          case Op::kWr:
            wr(instr.bank, instr.pattern);
            break;
          case Op::kWrWord:
            wrWord(instr.bank, instr.wordIdx, instr.value);
            break;
          case Op::kRd: {
            ReadRecord record;
            record.bank = instr.bank;
            record.row = dram.toLogical(
                instr.bank,
                dram.bankAt(instr.bank).openRow());
            record.when = clock;
            record.readout = rd(instr.bank);
            result.reads.push_back(std::move(record));
            break;
          }
          case Op::kRef:
            ref();
            break;
          case Op::kWait:
            wait(instr.waitNs);
            break;
          case Op::kWaitRef:
            waitWithRefresh(instr.waitNs);
            break;
        }
    }
    result.endTime = clock;
    return result;
}

} // namespace utrr
