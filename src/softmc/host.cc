#include "softmc/host.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "obs/profiler.hh"
#include "softmc/compiler.hh"

namespace utrr
{

namespace
{

/** Process-wide default tier. Atomic: campaign workers construct hosts
 *  concurrently; writes happen in CLI setup, before workers spawn. */
std::atomic<ExecMode> g_defaultExecMode{ExecMode::kCompiled};

} // namespace

void
SoftMcHost::setDefaultExecMode(ExecMode mode)
{
    g_defaultExecMode.store(mode, std::memory_order_relaxed);
}

ExecMode
SoftMcHost::defaultExecMode()
{
    return g_defaultExecMode.load(std::memory_order_relaxed);
}

WatchdogTimeout::WatchdogTimeout(Time budget_ns, Time deadline_ns,
                                 Time now_ns, std::uint64_t acts_issued,
                                 std::uint64_t refs_issued)
    : std::runtime_error(logFmt(
          "watchdog budget of ", budget_ns, "ns exceeded: now=", now_ns,
          "ns deadline=", deadline_ns, "ns after ", acts_issued,
          " ACTs / ", refs_issued, " REFs")),
      budgetNs(budget_ns), deadlineNs(deadline_ns), nowNs(now_ns),
      actsIssued(acts_issued), refsIssued(refs_issued)
{
}

StopRequested::StopRequested(Time now_ns)
    : std::runtime_error(
          logFmt("cooperative stop requested at ", now_ns, "ns")),
      nowNs(now_ns)
{
}

SoftMcHost::SoftMcHost(DramModule &module, Timing timing)
    : dram(module), timingParams(timing), planCache(kPlanCacheSlots)
{
}

SoftMcHost::PlanCacheEntry &
SoftMcHost::planSlotFor(Bank bank, Row row)
{
    const std::size_t h =
        (static_cast<std::size_t>(static_cast<std::uint32_t>(row)) *
             31u +
         static_cast<std::size_t>(static_cast<std::uint32_t>(bank))) %
        kPlanCacheSlots;
    return planCache[h];
}

const DramModule::ActPlan &
SoftMcHost::cachedPlan(Bank bank, Row row)
{
    PlanCacheEntry &entry = planSlotFor(bank, row);
    if (entry.bank != bank || entry.row != row ||
        entry.epoch != dram.planEpoch()) {
        entry.plan = dram.buildActPlan(bank, row, clock);
        entry.bank = bank;
        entry.row = row;
        entry.epoch = dram.planEpoch();
    }
    return entry.plan;
}

void
SoftMcHost::attachMetrics(MetricsRegistry *registry)
{
    metrics = registry;
    dram.attachMetrics(registry);
    if (fault != nullptr)
        fault->attachMetrics(registry);
}

void
SoftMcHost::publishPerfCounters()
{
    dram.publishPerfCounters();
    if (metrics != nullptr)
        metrics->counter("trace.dropped_events").value = cmdTrace.dropped();
}

void
SoftMcHost::attachFaultInjector(FaultInjector *injector)
{
    if (fault != nullptr && fault != injector)
        fault->attachTrace(nullptr);
    fault = injector;
    if (fault != nullptr) {
        fault->attachTrace(&cmdTrace);
        if (metrics != nullptr)
            fault->attachMetrics(metrics);
    }
}

void
SoftMcHost::setWatchdogBudget(Time budget_ns)
{
    if (budget_ns <= 0) {
        clearWatchdog();
        return;
    }
    wdBudget = budget_ns;
    wdDeadline = clock + budget_ns;
}

void
SoftMcHost::clearWatchdog()
{
    wdBudget = 0;
    wdDeadline = -1;
}

SoftMcHost::Snapshot
SoftMcHost::snapshotState() const
{
    Snapshot snap;
    snap.clock = clock;
    snap.acts = acts;
    snap.refCmds = refCmds;
    snap.wdBudget = wdBudget;
    snap.wdDeadline = wdDeadline;
    snap.trace = cmdTrace;
    return snap;
}

void
SoftMcHost::restoreState(const Snapshot &snap)
{
    clock = snap.clock;
    acts = snap.acts;
    refCmds = snap.refCmds;
    wdBudget = snap.wdBudget;
    wdDeadline = snap.wdDeadline;
    cmdTrace = snap.trace;
    // An attached fault injector records into the host's trace through
    // a cached pointer; the copy assignment above did not move the
    // object, so the pointer stays valid.
}

void
SoftMcHost::checkWatchdog()
{
    // The stop flag shares the watchdog's poll point (after every
    // command); the null check keeps the fault-free hot path to one
    // predictable branch.
    if (stopFlag != nullptr &&
        stopFlag->load(std::memory_order_relaxed)) {
        throw StopRequested(clock);
    }
    if (wdDeadline >= 0 && clock > wdDeadline)
        throw WatchdogTimeout(wdBudget, wdDeadline, clock, acts, refCmds);
}

void
SoftMcHost::applyMitigation(Bank bank, Row row)
{
    const MitigationAction action =
        mitigation->onActivate(bank, row, clock);
    clock += action.delayNs;
    // Victim refreshes are real ACT+PRE cycles issued while the bank
    // is still precharged (before the triggering activation opens it).
    const Row rows = dram.spec().rowsPerBank;
    for (Row victim : action.refreshRows) {
        if (victim < 0 || victim >= rows)
            continue;
        dram.act(bank, victim, clock);
        dram.pre(bank, clock);
        cmdTrace.record(TraceKind::kAct, bank, victim, clock,
                        timingParams.tRAS);
        clock += timingParams.hammerCycle();
        ++acts;
    }
}

void
SoftMcHost::act(Bank bank, Row row)
{
    if (mitigation != nullptr)
        applyMitigation(bank, row);
    dram.act(bank, row, clock);
    cmdTrace.record(TraceKind::kAct, bank, row, clock, timingParams.tRAS);
    clock += timingParams.tRAS;
    ++acts;
    checkWatchdog();
}

void
SoftMcHost::pre(Bank bank)
{
    dram.pre(bank, clock);
    cmdTrace.record(TraceKind::kPre, bank, kInvalidRow, clock,
                    timingParams.tRP);
    clock += timingParams.tRP;
}

void
SoftMcHost::wr(Bank bank, const DataPattern &pattern)
{
    // A dropped WR occupies the bus but leaves the row's old contents
    // in place; the consumer sees it as massive unexpected flips.
    if (fault == nullptr || !fault->shouldDropWr(bank, clock))
        dram.wr(bank, pattern, clock);
    cmdTrace.record(TraceKind::kWr, bank, kInvalidRow, clock,
                    timingParams.tBURST);
    clock += timingParams.tBURST;
}

void
SoftMcHost::wrWord(Bank bank, int word_idx, std::uint64_t value)
{
    dram.wrWord(bank, word_idx, value);
    cmdTrace.record(TraceKind::kWr, bank, kInvalidRow, clock,
                    timingParams.tBURST);
    clock += timingParams.tBURST;
}

RowReadout
SoftMcHost::rd(Bank bank)
{
    if (fault != nullptr)
        fault->onRowRead(dram, bank, dram.bankAt(bank).openRow(), clock);
    RowReadout readout = dram.rd(bank);
    if (fault != nullptr)
        fault->corruptReadout(readout, bank, clock);
    cmdTrace.record(TraceKind::kRd, bank, kInvalidRow, clock,
                    timingParams.tBURST);
    clock += timingParams.tBURST;
    return readout;
}

void
SoftMcHost::ref()
{
    if (mitigation != nullptr)
        mitigation->onRefresh(clock);
    // A dropped REF occupies the bus and counts on the host side, but
    // the module never performs the refresh sweep.
    if (fault == nullptr || !fault->shouldDropRef(clock))
        dram.ref(clock);
    cmdTrace.record(TraceKind::kRef, 0, kInvalidRow, clock,
                    timingParams.tRFC);
    clock += timingParams.tRFC;
    ++refCmds;
    checkWatchdog();
}

void
SoftMcHost::refBurst(int count)
{
    UTRR_PROF_SCOPE_SIM("softmc.ref_burst", &clock);
    for (int i = 0; i < count; ++i)
        ref();
}

void
SoftMcHost::refAtDefaultRate(int count)
{
    UTRR_PROF_SCOPE_SIM("softmc.ref_default_rate", &clock);
    const Time start = clock;
    for (int i = 0; i < count; ++i) {
        ref();
        Time gap = timingParams.tREFI - timingParams.tRFC;
        if (fault != nullptr)
            gap += fault->refJitter(clock);
        clock += gap;
    }
    if (fault != nullptr)
        fault->onTimeAdvance(dram, start, clock);
    checkWatchdog();
}

void
SoftMcHost::wait(Time ns)
{
    UTRR_PROF_SCOPE_SIM("softmc.wait", &clock);
    UTRR_ASSERT(ns >= 0, "cannot wait negative time");
    cmdTrace.record(TraceKind::kWait, 0, kInvalidRow, clock, ns);
    const Time start = clock;
    clock += ns;
    if (fault != nullptr)
        fault->onTimeAdvance(dram, start, clock);
    checkWatchdog();
}

void
SoftMcHost::waitWithRefresh(Time ns)
{
    UTRR_PROF_SCOPE_SIM("softmc.wait_refresh", &clock);
    const Time start = clock;
    const Time deadline = clock + ns;
    while (clock + timingParams.tREFI <= deadline) {
        Time gap = timingParams.tREFI - timingParams.tRFC;
        if (fault != nullptr)
            gap += fault->refJitter(clock);
        clock += gap;
        ref();
    }
    clock = std::max(clock, deadline);
    if (fault != nullptr)
        fault->onTimeAdvance(dram, start, clock);
    checkWatchdog();
}

void
SoftMcHost::writeRow(Bank bank, Row row, const DataPattern &pattern)
{
    act(bank, row);
    wr(bank, pattern);
    pre(bank);
}

RowReadout
SoftMcHost::readRow(Bank bank, Row row)
{
    act(bank, row);
    RowReadout readout = rd(bank);
    pre(bank);
    return readout;
}

void
SoftMcHost::hammerOnce(Bank bank, Row row)
{
    if (fault != nullptr && fault->shouldDropHammerAct(bank, row, clock)) {
        // The cycle burns bus time and counts on the host side, but the
        // module never sees the activation (no disturbance, no TRR
        // sampling).
        cmdTrace.record(TraceKind::kAct, bank, row, clock,
                        timingParams.tRAS);
        clock += timingParams.hammerCycle();
        ++acts;
        checkWatchdog();
        return;
    }
    act(bank, row);
    pre(bank);
}

bool
SoftMcHost::canBatchHammer(std::int64_t cycles) const
{
    if (execModeV != ExecMode::kCompiled || mitigation != nullptr ||
        fault != nullptr || cycles <= 1) {
        return false;
    }
    // The interpreter's watchdog fires after the ACT that crosses the
    // deadline (mid-burst, with the bank left open); if any ACT of this
    // burst could cross it, run the exact per-cycle path instead. The
    // last ACT's poll point is at start + (cycles-1)*hammerCycle + tRAS.
    return wdDeadline < 0 ||
        clock + (cycles - 1) * timingParams.hammerCycle() +
                timingParams.tRAS <=
            wdDeadline;
}

void
SoftMcHost::hammer(Bank bank, Row row, int count)
{
    UTRR_PROF_SCOPE_SIM("softmc.hammer", &clock);
    if (!canBatchHammer(count)) {
        for (int i = 0; i < count; ++i)
            hammerOnce(bank, row);
        return;
    }
    // Fused burst: one substrate call applies every cycle's physical
    // side effects bit-identically (see DramBank::applyActivationBurst);
    // the host replays the per-cycle trace records and advances the
    // clock by the same per-cycle increments, summed. The plan cache
    // makes back-to-back bursts of the same row (dummy fills hammer the
    // same handful every REF slot) skip translation and row lookups.
    const Time cycle = timingParams.hammerCycle();
    dram.actBurstPlanned(cachedPlan(bank, row), count, clock, cycle);
    if (cmdTrace.enabled()) {
        Time t = clock;
        for (int i = 0; i < count; ++i) {
            cmdTrace.record(TraceKind::kAct, bank, row, t,
                            timingParams.tRAS);
            cmdTrace.record(TraceKind::kPre, bank, kInvalidRow,
                            t + timingParams.tRAS, timingParams.tRP);
            t += cycle;
        }
    }
    clock += static_cast<Time>(count) * cycle;
    acts += static_cast<std::uint64_t>(count);
    checkWatchdog();
}

void
SoftMcHost::hammerInterleaved(
    const std::vector<std::pair<Bank, Row>> &rows,
    const std::vector<int> &counts)
{
    UTRR_PROF_SCOPE_SIM("softmc.hammer_interleaved", &clock);
    UTRR_ASSERT(rows.size() == counts.size(),
                "one count per aggressor row");
    std::int64_t total = 0;
    for (int c : counts)
        total += std::max(c, 0);
    if (!canBatchHammer(total)) {
        bool remaining = true;
        std::vector<int> left(counts);
        while (remaining) {
            remaining = false;
            for (std::size_t i = 0; i < rows.size(); ++i) {
                if (left[i] <= 0)
                    continue;
                hammerOnce(rows[i].first, rows[i].second);
                if (--left[i] > 0)
                    remaining = true;
            }
        }
        return;
    }

    // Batched round-robin: the first activation of each aggressor runs
    // the standard path (materializing its victim rows at exactly the
    // interpreter's simulated times), then an ActPlan caches the
    // resolved addresses, row states and pre-multiplied weights for
    // every later cycle. Alternating aggressors share victims, so the
    // per-cycle lastDisturber branch stays live inside actPlanned.
    const std::size_t n = rows.size();
    // Scratch stays on the stack for the common small fan-outs; a
    // heap-allocated vector per call would eat a measurable slice of
    // the fold's win (the batched path runs once per REF slot).
    constexpr std::size_t kStackAggr = 16;
    DramModule::ActPlan plansBuf[kStackAggr];
    char plannedBuf[kStackAggr];
    int leftBuf[kStackAggr];
    std::vector<DramModule::ActPlan> plansHeap;
    std::vector<char> plannedHeap;
    std::vector<int> leftHeap;
    DramModule::ActPlan *plans = plansBuf;
    char *planned = plannedBuf;
    int *left = leftBuf;
    if (n > kStackAggr) {
        plansHeap.resize(n);
        plannedHeap.assign(n, 0);
        leftHeap.assign(counts.begin(), counts.end());
        plans = plansHeap.data();
        planned = plannedHeap.data();
        left = leftHeap.data();
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            planned[i] = 0;
            left[i] = counts[i];
        }
    }
    const Time ras = timingParams.tRAS;
    const Time rp = timingParams.tRP;

    // When every aggressor hammers at least once, run the first pass
    // eagerly (same act/pre/plan order as the lazy loop below) and try
    // to fold the uniform min(counts)-1 remaining passes into a single
    // substrate call; stragglers with larger counts — or the whole run
    // when a bank declines the fold (VRT aggressor, charge too close to
    // a threshold, duplicate rows) — finish on the per-cycle path.
    int cmin = counts.empty() ? 0 : counts[0];
    for (int c : counts)
        cmin = std::min(cmin, c);
    if (n > 0 && cmin >= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            const Bank bank = rows[i].first;
            const Row row = rows[i].second;
            PlanCacheEntry &entry = planSlotFor(bank, row);
            if (entry.bank == bank && entry.row == row &&
                entry.epoch == dram.planEpoch()) {
                // Cache hit: the same actPlanned + trace/clock replay
                // as the per-cycle planned step below — bit-identical
                // to act()+pre(), minus the second victim pass and the
                // plan rebuild.
                dram.actPlanned(entry.plan, clock);
                cmdTrace.record(TraceKind::kAct, bank, row, clock, ras);
                clock += ras;
                ++acts;
                if (stopFlag != nullptr &&
                    stopFlag->load(std::memory_order_relaxed)) {
                    throw StopRequested(clock);
                }
                cmdTrace.record(TraceKind::kPre, bank, kInvalidRow,
                                clock, rp);
                clock += rp;
                plans[i] = entry.plan;
            } else {
                act(bank, row);
                pre(bank);
                plans[i] = dram.buildActPlan(bank, row, clock);
                entry.plan = plans[i];
                entry.bank = bank;
                entry.row = row;
                entry.epoch = dram.planEpoch();
            }
            planned[i] = 1;
            --left[i];
        }
        const int fold = cmin - 1;
        if (fold >= 1 &&
            dram.actInterleavedBurst(plans, static_cast<int>(n),
                                     fold, clock, ras + rp)) {
            if (cmdTrace.enabled()) {
                Time t = clock;
                for (int k = 0; k < fold; ++k) {
                    for (std::size_t i = 0; i < n; ++i) {
                        cmdTrace.record(TraceKind::kAct, rows[i].first,
                                        rows[i].second, t, ras);
                        cmdTrace.record(TraceKind::kPre, rows[i].first,
                                        kInvalidRow, t + ras, rp);
                        t += ras + rp;
                    }
                }
            }
            clock += static_cast<Time>(fold) * static_cast<Time>(n) *
                (ras + rp);
            acts += static_cast<std::uint64_t>(n) *
                static_cast<std::uint64_t>(fold);
            for (std::size_t i = 0; i < n; ++i)
                left[i] -= fold;
            // The fused span polls cancellation once instead of per ACT
            // (the watchdog was pre-checked for the whole run).
            if (stopFlag != nullptr &&
                stopFlag->load(std::memory_order_relaxed)) {
                throw StopRequested(clock);
            }
        }
    }

    bool remaining = false;
    for (std::size_t i = 0; i < n; ++i)
        remaining = remaining || left[i] > 0;
    while (remaining) {
        remaining = false;
        for (std::size_t i = 0; i < n; ++i) {
            if (left[i] <= 0)
                continue;
            if (!planned[i]) {
                act(rows[i].first, rows[i].second);
                pre(rows[i].first);
                plans[i] =
                    dram.buildActPlan(rows[i].first, rows[i].second,
                                      clock);
                planned[i] = 1;
            } else {
                dram.actPlanned(plans[i], clock);
                cmdTrace.record(TraceKind::kAct, rows[i].first,
                                rows[i].second, clock, ras);
                clock += ras;
                ++acts;
                // The interpreter polls the stop flag after every ACT;
                // keep the same cancellation latency (the watchdog
                // itself was pre-checked for the whole run).
                if (stopFlag != nullptr &&
                    stopFlag->load(std::memory_order_relaxed)) {
                    throw StopRequested(clock);
                }
                cmdTrace.record(TraceKind::kPre, rows[i].first,
                                kInvalidRow, clock, rp);
                clock += rp;
            }
            if (--left[i] > 0)
                remaining = true;
        }
    }
}

void
SoftMcHost::hammerCascaded(const std::vector<std::pair<Bank, Row>> &rows,
                           const std::vector<int> &counts)
{
    UTRR_PROF_SCOPE_SIM("softmc.hammer_cascaded", &clock);
    UTRR_ASSERT(rows.size() == counts.size(),
                "one count per aggressor row");
    for (std::size_t i = 0; i < rows.size(); ++i)
        hammer(rows[i].first, rows[i].second, counts[i]);
}

void
SoftMcHost::hammerMultiBank(
    const std::vector<std::pair<Bank, Row>> &rows, int count_each)
{
    UTRR_PROF_SCOPE_SIM("softmc.hammer_multibank", &clock);
    // Banks hammer in parallel; throughput is limited by both the
    // per-bank cycle time and the four-activation window.
    const auto banks = static_cast<std::int64_t>(rows.size());
    if (banks == 0 || count_each <= 0)
        return;

    const Time start = clock;
    Time penalty = 0;
    for (int i = 0; i < count_each; ++i) {
        for (const auto &[bank, row] : rows) {
            if (mitigation != nullptr) {
                const Time before = clock;
                applyMitigation(bank, row);
                penalty += clock - before;
                clock = before;
            }
            cmdTrace.record(TraceKind::kAct, bank, row, clock,
                            timingParams.tRAS);
            ++acts;
            if (fault != nullptr &&
                fault->shouldDropHammerAct(bank, row, clock))
                continue; // bus slot burnt, module never sees the ACT
            dram.act(bank, row, clock);
            dram.pre(bank, clock);
        }
    }
    const Time per_bank_bound =
        static_cast<Time>(count_each) * timingParams.hammerCycle();
    const Time tfaw_bound = static_cast<Time>(count_each) * banks *
        timingParams.tFAW / 4;
    clock = start + std::max(per_bank_bound, tfaw_bound) + penalty;
    checkWatchdog();
}

ExecResult
SoftMcHost::execute(const Program &program)
{
    // Mitigation and fault injection hook individual commands (e.g. a
    // dropped hammer ACT exists only on the immediate API); programs
    // run under them stay on the interpreter so every per-command hook
    // fires exactly as recorded.
    if (execModeV != ExecMode::kCompiled || mitigation != nullptr ||
        fault != nullptr) {
        return executeInterpreted(program);
    }
    return executeCompiled(ProgramCompiler::compile(program));
}

ExecResult
SoftMcHost::executeCompiled(const CompiledProgram &compiled)
{
    UTRR_PROF_SCOPE_SIM("softmc.execute", &clock);
    ExecResult result;
    result.startTime = clock;
    result.reads.reserve(compiled.readCount);
    for (const CompiledOp &op : compiled.ops) {
        switch (op.kind) {
          case CompiledOpKind::kHammer:
            hammer(op.bank, op.row, op.count);
            break;
          case CompiledOpKind::kWriteRow:
            act(op.bank, op.row);
            wr(op.bank, compiled.patterns[static_cast<std::size_t>(
                            op.patternIdx)]);
            pre(op.bank);
            break;
          case CompiledOpKind::kReadRow: {
            act(op.bank, op.row);
            ReadRecord record;
            record.bank = op.bank;
            record.row = dram.toLogical(
                op.bank, dram.bankAt(op.bank).openRow());
            record.when = clock;
            record.readout = rd(op.bank);
            result.reads.push_back(std::move(record));
            pre(op.bank);
            break;
          }
          case CompiledOpKind::kRefBurst:
            for (int i = 0; i < op.count; ++i)
                ref();
            break;
          case CompiledOpKind::kAct:
            act(op.bank, op.row);
            break;
          case CompiledOpKind::kPre:
            pre(op.bank);
            break;
          case CompiledOpKind::kWr:
            wr(op.bank, compiled.patterns[static_cast<std::size_t>(
                            op.patternIdx)]);
            break;
          case CompiledOpKind::kWrWord:
            wrWord(op.bank, op.wordIdx, op.value);
            break;
          case CompiledOpKind::kRd: {
            ReadRecord record;
            record.bank = op.bank;
            record.row = dram.toLogical(
                op.bank, dram.bankAt(op.bank).openRow());
            record.when = clock;
            record.readout = rd(op.bank);
            result.reads.push_back(std::move(record));
            break;
          }
          case CompiledOpKind::kWait:
            wait(op.waitNs);
            break;
          case CompiledOpKind::kWaitRef:
            waitWithRefresh(op.waitNs);
            break;
        }
    }
    result.endTime = clock;
    return result;
}

ExecResult
SoftMcHost::executeInterpreted(const Program &program)
{
    UTRR_PROF_SCOPE_SIM("softmc.execute", &clock);
    ExecResult result;
    result.startTime = clock;
    for (const Instr &instr : program.instructions()) {
        switch (instr.op) {
          case Op::kAct:
            act(instr.bank, instr.row);
            break;
          case Op::kPre:
            pre(instr.bank);
            break;
          case Op::kWr:
            wr(instr.bank, instr.pattern);
            break;
          case Op::kWrWord:
            wrWord(instr.bank, instr.wordIdx, instr.value);
            break;
          case Op::kRd: {
            ReadRecord record;
            record.bank = instr.bank;
            record.row = dram.toLogical(
                instr.bank,
                dram.bankAt(instr.bank).openRow());
            record.when = clock;
            record.readout = rd(instr.bank);
            result.reads.push_back(std::move(record));
            break;
          }
          case Op::kRef:
            ref();
            break;
          case Op::kWait:
            wait(instr.waitNs);
            break;
          case Op::kWaitRef:
            waitWithRefresh(instr.waitNs);
            break;
        }
    }
    result.endTime = clock;
    return result;
}

} // namespace utrr
