#!/usr/bin/env python3
"""Per-directory line-coverage summary from a UTRR_COVERAGE build.

Walks a build tree for .gcda files, asks gcov for JSON intermediate
records, and aggregates executable-line coverage per source directory
(src/<subsystem>). With --check it enforces the floors recorded in
scripts/coverage_baseline.txt and exits non-zero when a guarded
directory regresses.

Usage:
  cmake -B build-cov -S . -DUTRR_COVERAGE=ON
  cmake --build build-cov -j
  (cd build-cov && ctest -L tier1 -j"$(nproc)")
  python3 scripts/coverage_report.py --build-dir build-cov \
      --check scripts/coverage_baseline.txt

Only the python3 standard library and the gcov binary matching the
compiler are required.
"""

import argparse
import json
import os
import subprocess
import sys
from collections import defaultdict


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                out.append(os.path.abspath(os.path.join(root, name)))
    return sorted(out)


def gcov_json_docs(gcda_paths, build_dir, gcov):
    """Yield parsed gcov JSON documents for every data file."""
    chunk = 64
    for i in range(0, len(gcda_paths), chunk):
        batch = gcda_paths[i:i + chunk]
        proc = subprocess.run(
            [gcov, "--stdout", "--json-format", *batch],
            capture_output=True,
            text=True,
            cwd=build_dir,
            check=False,
        )
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def collect_line_hits(docs, source_root):
    """(relative source file) -> {line: max execution count}."""
    hits = defaultdict(dict)
    for doc in docs:
        for record in doc.get("files", []):
            path = record.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(source_root, path)
            rel = os.path.relpath(os.path.realpath(path),
                                  os.path.realpath(source_root))
            if rel.startswith(".."):
                continue  # system headers, gtest, ...
            if not (rel.startswith("src" + os.sep) or
                    rel.startswith("examples" + os.sep)):
                continue
            file_hits = hits[rel]
            for entry in record.get("lines", []):
                num = entry.get("line_number")
                count = entry.get("count", 0)
                if num is None:
                    continue
                file_hits[num] = max(file_hits.get(num, 0), count)
    return hits


def directory_of(rel_path):
    """src/dram/bank.cc -> src/dram (two components)."""
    parts = rel_path.split(os.sep)
    return os.sep.join(parts[:2]) if len(parts) > 1 else parts[0]


def summarize(hits):
    """dir -> (covered, total) over executable lines."""
    summary = defaultdict(lambda: [0, 0])
    for rel, lines in hits.items():
        entry = summary[directory_of(rel)]
        entry[0] += sum(1 for c in lines.values() if c > 0)
        entry[1] += len(lines)
    return summary


def load_baseline(path):
    floors = {}
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            name, floor = line.split()
            floors[name] = float(floor)
    return floors


def main():
    parser = argparse.ArgumentParser(
        description="per-directory gcov line-coverage summary")
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-root", default=".")
    parser.add_argument("--gcov", default="gcov")
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="fail when a directory listed in BASELINE is below its "
             "recorded floor (percent)")
    args = parser.parse_args()

    gcda = find_gcda(args.build_dir)
    if not gcda:
        print(f"coverage_report: no .gcda under {args.build_dir} — "
              "build with -DUTRR_COVERAGE=ON and run the tests first",
              file=sys.stderr)
        return 2

    hits = collect_line_hits(
        gcov_json_docs(gcda, args.build_dir, args.gcov),
        args.source_root)
    if not hits:
        print("coverage_report: gcov produced no usable records",
              file=sys.stderr)
        return 2

    summary = summarize(hits)
    print(f"{'directory':<20} {'lines':>7} {'covered':>8} {'pct':>7}")
    percents = {}
    for name in sorted(summary):
        covered, total = summary[name]
        pct = 100.0 * covered / total if total else 0.0
        percents[name] = pct
        print(f"{name:<20} {total:>7} {covered:>8} {pct:>6.1f}%")

    if not args.check:
        return 0

    failed = False
    for name, floor in sorted(load_baseline(args.check).items()):
        actual = percents.get(name, 0.0)
        status = "ok" if actual >= floor else "BELOW BASELINE"
        print(f"check {name}: {actual:.1f}% vs floor {floor:.1f}% "
              f"[{status}]")
        if actual < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
