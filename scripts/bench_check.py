#!/usr/bin/env python3
"""Perf-regression guard: compare a fresh bench_perf run to the baseline.

Compares the per-benchmark ``real_ns`` rounds of a freshly produced
BENCH_perf.json against the committed baseline:

  * ratio > WARN_RATIO (1.3x slower)  -> warning, exit 0
  * ratio > FAIL_RATIO (2.0x slower)  -> listed as FAIL, exit 1

Benchmarks present in only one of the two files are reported per line
and enumerated explicitly in the summary, but are never fatal (the
baseline refresh lands in the same commit as a new benchmark).

Comparisons use wall-clock ``real_ns`` from runs on whatever host
produced each file, so host load shifts every ratio together: the
committed baseline once recorded BM_RetentionScan/8192 at 2.9 ms where
a quiet host measures ~1.8 ms, and every other benchmark in that same
round drifted by a similar 1.25-1.6x factor. Before trusting a FAIL,
check whether the slowdown is broad (all rows shifted -> noisy host,
re-run on a quiet machine) or isolated to a few benchmarks (a real
regression in that path). Campaign wall-clock results (``runner_*``) are informational
only: they depend on the host's core count, so they are printed when
present but never gate. When the producing run sets
``parallel_unmeasured`` (single-core host), the speedup line becomes an
explicit warning instead of a measurement.

Intended CI use (non-blocking step):

    UTRR_BENCH_SKIP_CAMPAIGN=1 ./bench/bench_perf --benchmark_min_time=0.05
    python3 scripts/bench_check.py BENCH_perf.json build/BENCH_perf.json
"""

import argparse
import json
import sys

WARN_RATIO = 1.3
FAIL_RATIO = 2.0


def load_rounds(path):
    with open(path) as fh:
        doc = json.load(fh)
    rounds = {}
    for entry in doc.get("rounds", []):
        name = entry.get("benchmark")
        real_ns = entry.get("real_ns")
        if name is not None and real_ns:
            rounds[name] = float(real_ns)
    return doc, rounds


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_perf.json")
    parser.add_argument("fresh", help="freshly produced BENCH_perf.json")
    parser.add_argument(
        "--warn-ratio", type=float, default=WARN_RATIO,
        help="slowdown ratio that triggers a warning (default %(default)s)")
    parser.add_argument(
        "--fail-ratio", type=float, default=FAIL_RATIO,
        help="slowdown ratio that fails the check (default %(default)s)")
    args = parser.parse_args()

    base_doc, base = load_rounds(args.baseline)
    fresh_doc, fresh = load_rounds(args.fresh)

    if not base or not fresh:
        print("bench_check: no comparable rounds "
              f"(baseline {len(base)}, fresh {len(fresh)})")
        return 1

    failures = []
    warnings = []
    removed = []
    added = sorted(set(fresh) - set(base))
    for name in sorted(base):
        if name not in fresh:
            removed.append(name)
            print(f"  [gone] {name}: in baseline only (skipped)")
            continue
        ratio = fresh[name] / base[name]
        status = "ok"
        if ratio > args.fail_ratio:
            status = "FAIL"
            failures.append(name)
        elif ratio > args.warn_ratio:
            status = "warn"
            warnings.append(name)
        print(f"  [{status:>4}] {name}: {base[name]:.0f} ns -> "
              f"{fresh[name]:.0f} ns ({ratio:.2f}x)")
    for name in added:
        print(f"  [new ] {name}: {fresh[name]:.0f} ns (no baseline)")

    # Coverage changes are easy to miss in the per-line stream, so the
    # summary enumerates them explicitly: a silently vanished benchmark
    # is a regression of the guard itself, and a new one is the cue to
    # refresh the committed baseline in the same commit.
    if added:
        print(f"bench_check: {len(added)} new benchmark(s) without a "
              f"baseline: {', '.join(added)}")
    if removed:
        print(f"bench_check: {len(removed)} benchmark(s) removed from "
              f"the fresh run: {', '.join(removed)}")

    results = fresh_doc.get("results", {})
    speedup = results.get("runner_speedup")
    if speedup is not None:
        jobs = results.get("runner_best_jobs",
                           results.get("runner_parallel_jobs"))
        hw = results.get("hardware_concurrency")
        if results.get("parallel_unmeasured"):
            print(f"  [warn] scaling matrix ran on a single-core host "
                  f"(hardware_concurrency {hw}): the recorded "
                  f"{speedup:.2f}x speedup is serial-vs-serial noise, "
                  f"not a parallelism measurement")
        else:
            print(f"  [info] runner_speedup {speedup:.2f}x at {jobs} "
                  f"jobs (hardware_concurrency {hw}) — host-dependent, "
                  f"not gated")

    if failures:
        print(f"bench_check: FAIL — {len(failures)} benchmark(s) more "
              f"than {args.fail_ratio}x slower: {', '.join(failures)}")
        return 1
    if warnings:
        print(f"bench_check: {len(warnings)} benchmark(s) more than "
              f"{args.warn_ratio}x slower (warning only)")
    else:
        print("bench_check: all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
