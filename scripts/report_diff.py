#!/usr/bin/env python3
"""Byte-compare two ExperimentReport JSON files on their deterministic
projection.

The deterministic projection (``deterministicProjection`` in
src/obs/report.hh, DESIGN.md §14) removes every wall-clock-dependent
key — ``wall_ms``, ``job_wall_ms``, ``eta_ms``, ``campaign_wall_ms``,
the ``campaign.wall_ms`` gauge, every ``<name>.us`` ScopedTimer
histogram and the whole top-level ``profile`` section. What remains is
a pure function of the campaign inputs, so a
campaign that was SIGKILLed and resumed (``--journal FILE --resume``)
must reproduce it exactly. This script is the CI-side check of that
invariant:

    reverse_engineer --battery --report clean.json
    ...crash + resume...         --report resumed.json
    python3 scripts/report_diff.py clean.json resumed.json

Exit status: 0 when the projections are identical, 1 with a list of
divergent paths otherwise (2 on unreadable input).
"""

import argparse
import json
import sys

# Mirrors wallClockKey() in src/obs/report.cc.
WALL_CLOCK_KEYS = {
    "wall_ms",
    "job_wall_ms",
    "eta_ms",
    "campaign_wall_ms",
    "campaign.wall_ms",
}


def wall_clock_key(key):
    # "<name>.us" is the ScopedTimer convention: a histogram of
    # wall-clock microseconds (the paired ".calls" counters stay).
    return key in WALL_CLOCK_KEYS or key.endswith(".us")

MAX_REPORTED_DIVERGENCES = 20


def project(value, top_level=False):
    """The deterministic projection of a parsed report."""
    if isinstance(value, dict):
        return {
            key: project(member)
            for key, member in value.items()
            if not wall_clock_key(key)
            and not (top_level and key == "profile")
        }
    if isinstance(value, list):
        return [project(member) for member in value]
    return value


def diff(a, b, path, out):
    """Collect divergent paths between two projected values."""
    if len(out) >= MAX_REPORTED_DIVERGENCES:
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != "
                   f"{type(b).__name__}")
    elif isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                out.append(f"{path}.{key}: only in second report")
            elif key not in b:
                out.append(f"{path}.{key}: only in first report")
            else:
                diff(a[key], b[key], f"{path}.{key}", out)
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for i, (x, y) in enumerate(zip(a, b)):
            diff(x, y, f"{path}[{i}]", out)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"report_diff: cannot read {path}: {exc}")
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("first", help="reference report JSON")
    parser.add_argument("second", help="report JSON to compare")
    args = parser.parse_args()

    first = project(load(args.first), top_level=True)
    second = project(load(args.second), top_level=True)

    # Serialized comparison first: it is the actual invariant (byte
    # identity of the projection), the structural diff is diagnostics.
    if json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True):
        print(f"report_diff: {args.first} == {args.second} "
              "(deterministic projection)")
        return 0

    divergences = []
    diff(first, second, "$", divergences)
    print(f"report_diff: {args.first} != {args.second}")
    for line in divergences:
        print(f"  {line}")
    if len(divergences) >= MAX_REPORTED_DIVERGENCES:
        print("  ... (further divergences suppressed)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
