#!/usr/bin/env bash
# Crash-recovery smoke (DESIGN.md §14, EXPERIMENTS.md): SIGKILL a
# journaled 45-module battery partway through — mid-journal-record, the
# torn write a power cut produces — then resume it and require the
# resumed report to be byte-identical (deterministic projection) to an
# uninterrupted run.
#
# Usage: scripts/crash_recovery_smoke.sh [BINARY] [JOBS] [WORKDIR]
#   BINARY   reverse_engineer binary (default ./build/examples/reverse_engineer)
#   JOBS     campaign worker count   (default 4)
#   WORKDIR  artifact directory      (default ./crash_recovery_smoke)
#
# Exit status: 0 on success; 1 on any contract violation. On failure
# the journal and reports stay in WORKDIR for inspection (CI uploads
# them as artifacts).

set -u

BIN=${1:-./build/examples/reverse_engineer}
JOBS=${2:-4}
WORKDIR=${3:-./crash_recovery_smoke}
SCRIPTS_DIR=$(cd "$(dirname "$0")" && pwd)

# Die at journal record 23 (header is record 0, so ~22 of 45 modules
# are safely journaled) after 40 bytes of the record — a torn line the
# reader must drop.
CRASH_SPEC=${UTRR_SMOKE_CRASH_SPEC:-23:40}

fail() {
    echo "crash_recovery_smoke: FAIL: $*" >&2
    exit 1
}

[ -x "$BIN" ] || fail "binary not found or not executable: $BIN"
mkdir -p "$WORKDIR" || fail "cannot create $WORKDIR"

REF="$WORKDIR/reference_report.json"
RESUMED="$WORKDIR/resumed_report.json"
JOURNAL="$WORKDIR/journal.jsonl"
rm -f "$REF" "$RESUMED" "$JOURNAL" "$JOURNAL.stale"

echo "== clean reference battery (--jobs $JOBS)"
"$BIN" --battery --jobs "$JOBS" --report "$REF" \
    || fail "clean battery run failed"

echo "== journaled battery, SIGKILL at journal record $CRASH_SPEC"
UTRR_JOURNAL_CRASH="$CRASH_SPEC" \
    "$BIN" --battery --jobs "$JOBS" --journal "$JOURNAL" \
    > "$WORKDIR/crashed_run.log" 2>&1
status=$?
# 128 + SIGKILL(9) = 137: anything else means the crash never fired
# (a vacuously green smoke) or the process died some other way.
[ "$status" -eq 137 ] \
    || fail "expected SIGKILL exit 137, got $status (crash hook inert?)"
[ -s "$JOURNAL" ] || fail "no journal survived the crash"

echo "== resume from the survivor journal"
"$BIN" --battery --jobs "$JOBS" --journal "$JOURNAL" --resume \
    --report "$RESUMED"
status=$?
[ "$status" -eq 0 ] || fail "resumed battery exited $status"
grep -q "resumed from journal" "$WORKDIR/resumed_run.log" 2>/dev/null \
    || true # log line is informational; the report diff is the check

echo "== compare deterministic projections"
python3 "$SCRIPTS_DIR/report_diff.py" "$REF" "$RESUMED" \
    || fail "resumed report diverges from the uninterrupted run"

echo "crash_recovery_smoke: PASS"
