#!/usr/bin/env python3
"""Schema validator for streaming campaign telemetry (and folded profiles).

Validates a JSONL telemetry file produced by ``reverse_engineer
--battery --telemetry FILE`` (TelemetrySink, schema version 1):

  * every line parses as a JSON object with an envelope of
    ``type`` (str), ``seq`` (int) and ``wall_ms`` (number >= 0);
  * ``seq`` starts at 0 and increases by exactly 1 per record;
  * the first record is ``campaign_start`` carrying ``schema`` == 1,
    ``jobs_total``, ``workers`` and ``seed``;
  * a resumed campaign (``--journal FILE --resume``) emits exactly one
    ``campaign_resume`` directly after ``campaign_start`` with
    ``schema``, ``journaled``, ``scheduled`` and ``jobs_total``;
    journaled jobs produce no heartbeat of their own, so the final
    ``jobs_done`` must equal heartbeats + ``journaled``;
  * every ``heartbeat`` carries the per-job fields (module, job_index,
    ok, attempts, quarantined), the running campaign totals (jobs_done,
    jobs_total, retries, quarantined_total, failures), an ``eta_ms``
    number (-1.0 when undefined) and a ``metrics`` object mapping
    counter names to non-negative integers;
  * ``jobs_done`` never decreases and ends at the number of heartbeats
    (plus ``journaled`` after a resume);
  * the last record is ``campaign_end`` with failure/retry totals and
    the final ``ok`` verdict.

With ``--folded FILE`` additionally checks a folded-stack profile
(``reverse_engineer --profile-folded``): every line must be
``frame(;frame)* <non-negative integer>`` — the format flamegraph.pl
consumes.

Exit status: 0 when every check passes, 1 otherwise.  Intended CI use:

    reverse_engineer --battery --telemetry tel.jsonl \
        --profile-folded prof.folded
    python3 scripts/telemetry_check.py tel.jsonl --folded prof.folded
"""

import argparse
import json
import re
import sys

SCHEMA_VERSION = 1

HEARTBEAT_REQUIRED = {
    "module": str,
    "job_index": int,
    "ok": bool,
    "attempts": int,
    "quarantined": bool,
    "jobs_done": int,
    "jobs_total": int,
    "eta_ms": (int, float),
    "retries": int,
    "quarantined_total": int,
    "failures": int,
    "job_wall_ms": (int, float),
    "job_sim_ns": int,
    "metrics": dict,
}

FOLDED_LINE = re.compile(r"^[^ ;]+(;[^ ;]+)* \d+$")


def fail(errors, line_no, message):
    errors.append(f"  line {line_no}: {message}")


def check_envelope(record, line_no, expected_seq, errors):
    for key, kind in (("type", str), ("seq", int)):
        if not isinstance(record.get(key), kind):
            fail(errors, line_no, f"envelope field {key!r} missing or "
                 f"not {kind.__name__}")
            return False
    wall = record.get("wall_ms")
    if not isinstance(wall, (int, float)) or wall < 0:
        fail(errors, line_no, "wall_ms missing or negative")
        return False
    if record["seq"] != expected_seq:
        fail(errors, line_no,
             f"seq {record['seq']} (expected {expected_seq})")
        return False
    return True


def check_heartbeat(record, line_no, prev_done, errors):
    for key, kind in HEARTBEAT_REQUIRED.items():
        value = record.get(key)
        # bool is an int subclass; reject it where an int is required.
        if not isinstance(value, kind) or (kind is int
                                           and isinstance(value, bool)):
            fail(errors, line_no, f"heartbeat field {key!r} missing or "
                 "wrong type")
            return prev_done
    if record["jobs_done"] < prev_done:
        fail(errors, line_no, "jobs_done went backwards "
             f"({prev_done} -> {record['jobs_done']})")
    if record["jobs_done"] > record["jobs_total"]:
        fail(errors, line_no, "jobs_done exceeds jobs_total")
    for name, value in record["metrics"].items():
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            fail(errors, line_no, f"metrics[{name!r}] is not a "
                 "non-negative integer")
            break
    return record["jobs_done"]


def check_telemetry(path):
    errors = []
    records = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                fail(errors, line_no, "blank line")
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                fail(errors, line_no, f"not JSON: {exc}")
                continue
            if not isinstance(record, dict):
                fail(errors, line_no, "record is not an object")
                continue
            records.append((line_no, record))

    if not records:
        print(f"telemetry_check: {path}: empty file")
        return ["  no records"]

    heartbeats = 0
    jobs_done = 0
    journaled = 0
    for idx, (line_no, record) in enumerate(records):
        if not check_envelope(record, line_no, idx, errors):
            continue
        kind = record["type"]
        if idx == 0:
            if kind != "campaign_start":
                fail(errors, line_no,
                     f"first record is {kind!r}, not campaign_start")
            elif record.get("schema") != SCHEMA_VERSION:
                fail(errors, line_no, "campaign_start schema "
                     f"{record.get('schema')!r} != {SCHEMA_VERSION}")
            elif not all(isinstance(record.get(k), int)
                         for k in ("jobs_total", "workers", "seed")):
                fail(errors, line_no, "campaign_start missing "
                     "jobs_total/workers/seed")
            continue
        if kind == "heartbeat":
            heartbeats += 1
            jobs_done = check_heartbeat(record, line_no, jobs_done,
                                        errors)
        elif kind == "campaign_resume":
            if idx != 1:
                fail(errors, line_no, "campaign_resume must directly "
                     "follow campaign_start")
            elif record.get("schema") != SCHEMA_VERSION:
                fail(errors, line_no, "campaign_resume schema "
                     f"{record.get('schema')!r} != {SCHEMA_VERSION}")
            elif not all(isinstance(record.get(k), int)
                         and not isinstance(record.get(k), bool)
                         for k in ("journaled", "scheduled",
                                   "jobs_total")):
                fail(errors, line_no, "campaign_resume missing "
                     "journaled/scheduled/jobs_total")
            elif (record["journaled"] + record["scheduled"]
                  != record["jobs_total"]):
                fail(errors, line_no, "campaign_resume journaled + "
                     "scheduled != jobs_total")
            else:
                # Journaled jobs emit no heartbeat; they seed the tally.
                journaled = record["journaled"]
                jobs_done = journaled
        elif kind == "campaign_end":
            if idx != len(records) - 1:
                fail(errors, line_no, "campaign_end is not last")
            for key in ("jobs_total", "failures", "retries",
                        "quarantined", "campaign_wall_ms", "ok"):
                if key not in record:
                    fail(errors, line_no,
                         f"campaign_end missing {key!r}")
        elif kind == "campaign_start":
            fail(errors, line_no, "duplicate campaign_start")
        else:
            fail(errors, line_no, f"unknown record type {kind!r}")

    last = records[-1][1]
    if last.get("type") != "campaign_end":
        fail(errors, records[-1][0], "file does not end in campaign_end")
    elif (heartbeats or journaled) \
            and jobs_done != heartbeats + journaled:
        fail(errors, records[-1][0], f"final jobs_done {jobs_done} != "
             f"{heartbeats} heartbeats + {journaled} journaled")
    print(f"telemetry_check: {path}: {len(records)} records, "
          f"{heartbeats} heartbeats, {journaled} journaled")
    return errors


def check_folded(path):
    errors = []
    lines = 0
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not FOLDED_LINE.match(line):
                fail(errors, line_no,
                     f"not 'frame(;frame)* <count>': {line!r}")
            lines += 1
    if lines == 0:
        fail(errors, 0, "empty folded profile")
    print(f"telemetry_check: {path}: {lines} folded stacks")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("telemetry", help="JSONL telemetry file")
    parser.add_argument("--folded", metavar="FILE",
                        help="also validate a folded-stack profile")
    args = parser.parse_args()

    errors = check_telemetry(args.telemetry)
    if args.folded:
        errors += check_folded(args.folded)

    if errors:
        print("telemetry_check: FAIL")
        for line in errors:
            print(line)
        return 1
    print("telemetry_check: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
