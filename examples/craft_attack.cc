/**
 * @file
 * Crafting and evaluating a U-TRR custom RowHammer pattern (§7).
 *
 * Usage: craft_attack [MODULE]
 *
 * The example first shows that the state-of-the-art baselines
 * (double-sided, TRRespass many-sided) cause no bit flips on a
 * TRR-protected module, then reverse-engineers the two parameters the
 * custom patterns need (TRR-to-REF period and detection type), builds
 * the vendor-specific pattern, and measures the flips it induces.
 */

#include <iostream>

#include "attack/sweep.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/reveng.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

using namespace utrr;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::kWarn);
    const std::string name = argc > 1 ? argv[1] : "B8";
    const auto spec_opt = findModuleSpec(name);
    if (!spec_opt)
        fatal("unknown module " + name);
    const ModuleSpec spec = *spec_opt;

    DramModule module(spec, 1337);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);

    std::cout << "== Attacking module " << spec.name << " ("
              << trrVersionName(spec.trr) << ") ==\n\n";

    SweepConfig sweep_cfg;
    sweep_cfg.positions = 10;

    std::cout << "[1/3] Baselines (16K-64K hammers per aggressor per "
                 "refresh window):\n";
    for (BaselineKind kind :
         {BaselineKind::kSingleSided, BaselineKind::kDoubleSided,
          BaselineKind::kManySided9, BaselineKind::kManySided19}) {
        const SweepResult result =
            sweepBaseline(host, mapping, kind, sweep_cfg);
        std::cout << "      " << baselineName(kind) << ": "
                  << result.vulnerableRows << "/"
                  << result.victimRowsTested
                  << " victim rows flipped (max "
                  << result.maxRowFlips << " flips/row)\n";
    }

    std::cout << "\n[2/3] Reverse-engineering the TRR parameters the "
                 "custom pattern needs...\n";
    TrrRevengConfig reveng_cfg;
    reveng_cfg.scoutRowEnd = 6 * 1024;
    reveng_cfg.consistencyChecks = 25;
    TrrReveng reveng(host, mapping, reveng_cfg);
    TrrProfile profile;
    profile.trrToRefPeriod = reveng.discoverTrrRefPeriod();
    profile.detection = reveng.discoverDetectionType();
    profile.perBank = spec.traits().perBank;
    std::cout << "      TRR acts on every " << profile.trrToRefPeriod
              << "th REF; detection is "
              << detectionTypeName(profile.detection) << "\n";

    std::cout << "\n[3/3] U-TRR custom pattern built from the "
                 "discovered profile:\n";
    const CustomPatternParams params =
        customParamsFromProfile(spec.vendor, profile, spec.paired());
    const SweepResult custom =
        sweepCustomPattern(host, mapping, params, sweep_cfg);
    std::cout << "      " << custom.vulnerableRows << "/"
              << custom.victimRowsTested << " victim rows flipped, "
              << "max " << custom.maxRowFlips << " flips in one row, "
              << fmtDouble(custom.maxFlipsPerRowPerHammer())
              << " flips/row/hammer\n";

    TextTable words("Bit flips per 8-byte word (ECC impact, §7.4)");
    words.header({"flips/word", "words"});
    for (const auto &[flips, count] : custom.wordFlips.bins())
        words.addRow(flips, count);
    words.print(std::cout);

    std::cout << "\nPaper's verdict: the pattern synchronizes with the "
                 "TRR-capable REFs and steers detection toward dummy "
                 "rows, so the victims never receive a timely "
                 "TRR-induced refresh.\n";
    return 0;
}
