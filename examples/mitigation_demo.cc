/**
 * @file
 * Controller-mitigation demo (paper §8 direction): the same U-TRR
 * custom pattern that defeats the in-DRAM TRR is stopped by a
 * controller-side tracker with worst-case guarantees.
 *
 * Usage: mitigation_demo [MODULE]
 */

#include <iostream>

#include "attack/sweep.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "dram/module.hh"
#include "mitigation/blockhammer.hh"
#include "mitigation/graphene.hh"
#include "mitigation/para.hh"
#include "softmc/host.hh"

using namespace utrr;

namespace
{

SweepResult
attack(const ModuleSpec &spec, ControllerMitigation *policy)
{
    DramModule module(spec, 2024);
    SoftMcHost host(module);
    if (policy != nullptr)
        host.attachMitigation(policy);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    SweepConfig cfg;
    cfg.positions = 8;
    return sweepCustomPattern(host, mapping,
                              defaultCustomParams(spec), cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::kWarn);
    const std::string name = argc > 1 ? argv[1] : "A5";
    const auto spec_opt = findModuleSpec(name);
    if (!spec_opt)
        fatal("unknown module " + name);
    const ModuleSpec spec = *spec_opt;

    std::cout << "== " << spec.name
              << ": U-TRR custom pattern vs controller mitigations "
                 "==\n\n";

    const SweepResult bare = attack(spec, nullptr);
    std::cout << "in-DRAM TRR alone:       "
              << fmtPercent(bare.vulnerableFraction())
              << " of victim rows flipped (max " << bare.maxRowFlips
              << " flips/row)\n";

    Para::Params para_params;
    para_params.probability = 0.0001;
    Para weak_para(para_params, 1);
    const SweepResult with_weak_para = attack(spec, &weak_para);
    std::cout << "+ PARA (p = 1e-4):       "
              << fmtPercent(with_weak_para.vulnerableFraction())
              << " flipped — too weak a probability still leaks\n";

    Graphene::Params graphene_params;
    graphene_params.threshold = 2'000;
    Graphene graphene(spec.banks, graphene_params);
    const SweepResult with_graphene = attack(spec, &graphene);
    std::cout << "+ Graphene (T = 2K):     "
              << fmtPercent(with_graphene.vulnerableFraction())
              << " flipped — Misra-Gries tracking cannot be diverted "
                 "by dummies ("
              << graphene.refreshesOrdered()
              << " victim refreshes ordered)\n";

    BlockHammer::Params bh_params;
    bh_params.blacklistThreshold = 1'024;
    BlockHammer blockhammer(spec.banks, bh_params);
    const SweepResult with_bh = attack(spec, &blockhammer);
    std::cout << "+ BlockHammer:           "
              << fmtPercent(with_bh.vulnerableFraction())
              << " flipped — the aggressors themselves got throttled ("
              << fmtDouble(nsToMs(blockhammer.delayInjected()), 1)
              << " ms of delay injected)\n";

    std::cout
        << "\nThe dummy-row diversions that fool the proprietary TRR\n"
           "trackers are useless against mechanisms with worst-case\n"
           "tracking guarantees — the paper's argument for open,\n"
           "analyzable mitigations (§8).\n";
    return 0;
}
