/**
 * @file
 * Quickstart: the minimal U-TRR flow on one simulated module.
 *
 *  1. build a simulated DDR4 module (vendor A, module "A5") and a
 *     SoftMC host;
 *  2. reverse-engineer the logical-to-physical row mapping (§5.3);
 *  3. run Row Scout to find one R-R row group (§4);
 *  4. run a TRR Analyzer experiment per REF command and watch the
 *     module refresh the victims on every 9th REF (Obs. A1).
 */

#include <iostream>

#include "common/logging.hh"
#include "core/mapping_reveng.hh"
#include "core/row_scout.hh"
#include "core/trr_analyzer.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

using namespace utrr;

int
main()
{
    setLogLevel(LogLevel::kInform);

    // 1. A simulated module from Table 1 and a SoftMC host.
    const ModuleSpec spec = *findModuleSpec("A5");
    DramModule module(spec, /*seed=*/7);
    SoftMcHost host(module);
    std::cout << "module " << spec.name << ": " << spec.banks
              << " banks, " << spec.rowsPerBank << " rows/bank, TRR "
              << trrVersionName(spec.trr) << "\n";

    // 2. Discover the row-address mapping by hammering probe rows with
    //    refresh disabled and watching where the flips land.
    MappingReveng::Config map_cfg;
    map_cfg.probes = 6;
    MappingReveng mapper(host, map_cfg);
    const DiscoveredMapping mapping = mapper.discover();
    std::cout << "row scramble: " << scrambleName(mapping.scheme())
              << "\n";

    // 3. Row Scout: one R-R group (two retention-profiled rows with one
    //    aggressor slot between them).
    RowScoutConfig scout_cfg;
    scout_cfg.rowEnd = 2 * 1024;
    scout_cfg.layout = RowGroupLayout::parse("R-R");
    scout_cfg.groupCount = 1;
    scout_cfg.consistencyChecks = 25; // the paper uses 1000
    RowScout scout(host, mapping, scout_cfg);
    const std::vector<RowGroup> groups = scout.scout();
    if (groups.empty())
        fatal("row scout found no groups");
    const RowGroup &group = groups.front();
    std::cout << "row group at physical rows " << group.rows[0].physRow
              << " and " << group.rows[1].physRow << ", T = "
              << nsToMs(group.retention) << " ms\n";

    // 4. TRR Analyzer: hammer the row between the profiled rows and
    //    issue one REF per experiment. The victims lose their data in
    //    every iteration except when a TRR-induced refresh saved them.
    TrrAnalyzer analyzer(host, mapping);
    TrrExperimentConfig exp_cfg;
    AggressorSpec aggressor;
    aggressor.physRow = group.gapPhysRows().front();
    aggressor.hammers = 5'000;
    exp_cfg.aggressors = {aggressor};
    exp_cfg.reset = TrrResetMode::kNone;

    // The mapping probes left stale state in the TRR mechanism
    // (millions of activations!). Reset it once via the dummy-hammer
    // dance (Requirement 4) so the experiments below start clean.
    analyzer.resetTrrState(
        group.bank,
        {group.rows[0].physRow, group.rows[1].physRow,
         aggressor.physRow},
        /*refs=*/768, /*dummies=*/32, /*hammers_per_refi=*/16);

    std::cout << "\nTRR-induced refreshes observed at iterations:";
    std::vector<int> events;
    for (int iter = 0; iter < 60; ++iter) {
        const TrrExperimentResult result =
            analyzer.runExperiment(group, exp_cfg);
        if (result.anyRefreshed()) {
            events.push_back(iter);
            std::cout << " " << iter;
        }
    }
    std::cout << "\n";
    if (events.size() >= 2) {
        std::cout << "spacing: " << events[1] - events[0]
                  << " REF commands.\n";
    }
    std::cout
        << "\nWith a single hammered row group, only the counter-top\n"
           "TRR refresh (TREF_a, every 18th REF) detects our aggressor;\n"
           "the table-traversal TREF_b is busy with other table entries.\n"
           "Hammering 16 groups at once exposes the full 9-REF TRR\n"
           "cadence and both TREF types — see examples/reverse_engineer\n"
           "and bench_observations_a (paper Obs. A1/A3).\n";
    return 0;
}
