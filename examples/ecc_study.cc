/**
 * @file
 * ECC study (§7.4): can SECDED, Chipkill or Reed-Solomon survive the
 * flip patterns the U-TRR attacks produce?
 *
 * Usage: ecc_study [MODULE]
 *
 * The example hammers a module with its custom pattern, collects the
 * per-8-byte-word flip patterns, and runs every word through the three
 * codec families end to end (encode -> flip data bits -> decode),
 * reporting corrected / detected / silently-corrupted counts.
 */

#include <iostream>

#include "attack/sweep.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "dram/module.hh"
#include "ecc/ecc_analysis.hh"
#include "ecc/secded.hh"
#include "softmc/host.hh"

using namespace utrr;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::kWarn);
    const std::string name = argc > 1 ? argv[1] : "B13";
    const auto spec_opt = findModuleSpec(name);
    if (!spec_opt)
        fatal("unknown module " + name);
    const ModuleSpec spec = *spec_opt;

    std::cout << "== ECC study on module " << spec.name << " ==\n\n";

    // A tiny SECDED demo first: one flip corrected, two detected,
    // three can silently corrupt.
    const Secded::Codeword clean = Secded::encode(0xfeedface12345678ULL);
    auto one = Secded::flipBit(clean, 17);
    auto two = Secded::flipBit(one, 42);
    auto three = Secded::flipBit(two, 55);
    std::cout << "SECDED(72,64) on a sample word:\n"
              << "  1 flip  -> "
              << (Secded::decode(one).status ==
                          Secded::Status::kCorrected
                      ? "corrected"
                      : "?!")
              << "\n  2 flips -> "
              << (Secded::decode(two).status == Secded::Status::kDetected
                      ? "detected"
                      : "?!")
              << "\n  3 flips -> "
              << (Secded::decode(three).status ==
                          Secded::Status::kCorrected
                      ? "\"corrected\" to WRONG data (silent!)"
                      : "detected (this pattern got lucky)")
              << "\n\n";

    std::cout << "Hammering " << spec.name
              << " with its custom pattern to collect real flip "
                 "patterns...\n";
    DramModule module(spec, 4242);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    SweepConfig cfg;
    cfg.positions = 24;
    const SweepResult sweep = sweepCustomPattern(
        host, mapping, defaultCustomParams(spec), cfg);
    std::cout << "  " << sweep.wordFlips.total()
              << " flipped 8-byte words collected (up to "
              << sweep.wordFlips.maxValue() << " flips per word)\n";

    const EccStudy study =
        studyWordFlipHistogram(sweep.wordFlips, {3, 7, 14});

    TextTable table("End-to-end ECC outcomes");
    table.header({"Scheme", "corrected", "detected",
                  "silent corruption"});
    auto add = [&table](const std::string &scheme, const EccTally &t) {
        table.addRow(scheme, t.of(EccOutcome::kCorrected),
                     t.of(EccOutcome::kDetected), t.silentCorruption());
    };
    add("SECDED(72,64)", study.secded);
    add("Chipkill (SSC-DSD)", study.chipkill);
    add("RS(11,8)  t=1", study.reedSolomon.at(3));
    add("RS(15,8)  t=3", study.reedSolomon.at(7));
    add("RS(22,8)  t=7", study.reedSolomon.at(14));
    table.print(std::cout);

    std::cout
        << "\nConclusion (§7.4): conventional SECDED/Chipkill cannot\n"
           "protect against the custom patterns; guaranteed correction\n"
           "of the worst words needs ~14 parity symbols per 8 data\n"
           "symbols — a prohibitive overhead.\n";
    return 0;
}
