/**
 * @file
 * Retention-landscape demo: profile a row range the classic way
 * (RAIDR/REAPER-style) and print the retention-time histogram that the
 * U-TRR side channel is built on, at two temperatures.
 *
 * Usage: retention_map [MODULE] [ROWS]
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/retention_profiler.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

using namespace utrr;

namespace
{

RetentionProfile
profileAt(const ModuleSpec &spec, double temperature, Row rows)
{
    RetentionModelConfig retention;
    retention.tempCelsius = temperature;
    DramModule module(spec, 77, &retention);
    SoftMcHost host(module);
    RetentionProfiler::Config cfg;
    cfg.rowEnd = rows;
    cfg.repeats = 2;
    RetentionProfiler profiler(host, cfg);
    return profiler.profile();
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::kWarn);
    const std::string name = argc > 1 ? argv[1] : "A5";
    const Row rows = argc > 2 ? std::stoi(argv[2]) : 4'096;
    const auto spec_opt = findModuleSpec(name);
    if (!spec_opt)
        fatal("unknown module " + name);

    std::cout << "Profiling " << rows << " rows of " << name
              << " at 85 C and 55 C (retention halves every +10 C)"
              << "...\n";

    const RetentionProfile hot = profileAt(*spec_opt, 85.0, rows);
    const RetentionProfile cool = profileAt(*spec_opt, 55.0, rows);

    TextTable table("Rows first failing within T (cumulative buckets)");
    table.header({"T (ms)", "rows @ 85C", "rows @ 55C"});
    std::map<double, std::pair<int, int>> merged;
    for (const auto &[bucket, count] : hot.histogramMs)
        merged[bucket].first = count;
    for (const auto &[bucket, count] : cool.histogramMs)
        merged[bucket].second = count;
    for (const auto &[bucket, counts] : merged)
        table.addRow(fmtDouble(bucket, 0), counts.first,
                     counts.second);
    table.print(std::cout);

    std::cout << "\nweak fraction: " << fmtPercent(hot.weakFraction())
              << " @ 85C vs " << fmtPercent(cool.weakFraction())
              << " @ 55C;  VRT suspects @ 85C: " << hot.vrtSuspects
              << " of " << hot.rowsProfiled << " rows\n"
              << "\nRow Scout builds on exactly this landscape: it "
                 "wants rows that hold for T/2 and fail by T — and "
                 "rejects the VRT suspects via repeated validation.\n";
    return 0;
}
