/**
 * @file
 * Full TRR reverse-engineering session on one module (default A5),
 * narrating each discovery the way §6 of the paper does.
 *
 * Usage: reverse_engineer [MODULE] [--fast] [--trace FILE]
 *
 * With --trace, every DDR command of the session is recorded (bounded
 * ring buffer) and written as Chrome trace_event JSON — open the file
 * in chrome://tracing or https://ui.perfetto.dev to see the hammer
 * rounds, REF bursts and retention waits on a timeline.
 *
 * Everything here is black-box: the program only issues DDR commands
 * and reads data back; the TRR implementation inside the simulated
 * chip is never inspected directly.
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "common/logging.hh"
#include "core/mapping_reveng.hh"
#include "core/reveng.hh"
#include "dram/module.hh"
#include "softmc/host.hh"

using namespace utrr;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::kWarn);
    std::string name = "A5";
    bool fast = false;
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0) {
            fast = true;
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc)
                fatal("--trace needs a file argument");
            trace_path = argv[++i];
        } else {
            name = argv[i];
        }
    }

    const auto spec_opt = findModuleSpec(name);
    if (!spec_opt)
        fatal("unknown module " + name + " (try A0..A14, B0..B14, "
              "C0..C14)");
    const ModuleSpec spec = *spec_opt;
    DramModule module(spec, 2021);
    SoftMcHost host(module);
    if (!trace_path.empty())
        host.trace().enable(64 * 1024);

    std::cout << "== U-TRR reverse engineering of module " << spec.name
              << " (" << spec.banks << " banks, "
              << spec.rowsPerBank / 1024 << "K rows/bank) ==\n\n";

    std::cout << "[1/3] Discovering the logical-to-physical row "
                 "mapping (§5.3)...\n";
    MappingReveng::Config map_cfg;
    map_cfg.probes = fast ? 5 : 10;
    MappingReveng mapper(host, map_cfg);
    const DiscoveredMapping mapping = mapper.discover();
    std::cout << "      decoder scramble: "
              << scrambleName(mapping.scheme()) << ", "
              << mapping.anomalies().size()
              << " probe rows flagged as remapped\n\n";

    std::cout << "[2/3] Scouting retention-profiled row groups and "
                 "analyzing TRR (§6)...\n";
    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 8 * 1024;
    cfg.consistencyChecks = fast ? 20 : 100;
    TrrReveng reveng(host, mapping, cfg);
    const TrrProfile profile = reveng.discoverAll(!fast);

    std::cout << "\n[3/3] Findings vs the module's ground truth:\n";
    const TrrTraits truth = spec.traits();
    auto line = [](const std::string &what, const std::string &measured,
                   const std::string &expected) {
        std::cout << "      " << what << ": " << measured
                  << "   (ground truth: " << expected << ")\n";
    };
    line("TRR-capable REFs", logFmt("1 in ", profile.trrToRefPeriod),
         logFmt("1 in ", truth.trrToRefPeriod));
    line("victims refreshed per TRR event",
         std::to_string(profile.neighborsRefreshed),
         spec.paired() ? "1 (pair row)"
                       : std::to_string(truth.neighborsRefreshed));
    line("aggressor detection", detectionTypeName(profile.detection),
         truth.detection);
    if (!fast) {
        line("aggressor capacity",
             std::to_string(profile.aggressorCapacity),
             truth.aggressorCapacity < 0
                 ? "unknown"
                 : std::to_string(truth.aggressorCapacity));
        line("detection scope",
             profile.perBank ? "per-bank" : "chip-wide",
             truth.perBank ? "per-bank" : "chip-wide");
        line("regular-refresh period",
             logFmt(profile.regularRefreshPeriodRefs, " REFs"),
             logFmt(spec.refreshPeriodRefs, " REFs"));
    }
    switch (profile.detection) {
      case DetectionType::kCounterBased:
        std::cout << "      counter semantics: "
                  << (profile.countersResetOnDetect
                          ? "reset on detection (Obs. A6); "
                          : "no reset; ")
                  << (profile.tableEntriesPersist
                          ? "entries persist (Obs. A7)"
                          : "entries expire")
                  << (profile.evictsMinCounter
                          ? "; evict-min insertion (Obs. A5)"
                          : "")
                  << "\n";
        break;
      case DetectionType::kSamplingBased:
        std::cout << "      sampler survives TRR refreshes (Obs. B5): "
                  << (profile.samplerRetained ? "yes" : "no") << "\n";
        break;
      case DetectionType::kWindowBased:
        std::cout << "      dummy burst hiding later aggressors "
                     "(Obs. C2): ~"
                  << profile.detectionWindowActs << " ACTs\n";
        break;
      default:
        break;
    }
    std::cout << "\nSummary: " << profile.summary() << "\n";

    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
            warn("cannot write trace file " + trace_path);
        } else {
            host.trace().exportChromeTrace(out);
            std::cout << "\nWrote the last " << host.trace().size()
                      << " DDR commands (of "
                      << host.trace().recorded()
                      << " recorded) as a Chrome trace to " << trace_path
                      << "\n";
        }
    }
    return 0;
}
