/**
 * @file
 * Full TRR reverse-engineering session on one module (default A5),
 * narrating each discovery the way §6 of the paper does.
 *
 * Usage: reverse_engineer [MODULE] [--fast] [--trace FILE]
 *                         [--report FILE] [--battery [SEED]]
 *                         [--chaos SEED] [--jobs N] [--profile]
 *                         [--profile-folded FILE] [--telemetry FILE]
 *                         [--telemetry-fsync] [--journal FILE]
 *                         [--resume] [--no-compile]
 *
 * With --no-compile, every program executes through the one-command-
 * at-a-time interpreter instead of the compiled tier (DESIGN.md §17) —
 * slower but the reference semantics, useful when bisecting a
 * suspected compiled/interpreted divergence. Verdicts are identical
 * either way.
 *
 * With --trace, every DDR command of the session is recorded (bounded
 * ring buffer) and written as Chrome trace_event JSON — open the file
 * in chrome://tracing or https://ui.perfetto.dev to see the hammer
 * rounds, REF bursts and retention waits on a timeline.
 *
 * With --report, a structured ExperimentReport (JSON) of the session is
 * written; a failed write exits non-zero.
 *
 * With --battery, the TRR-to-REF ratio and neighbour count are instead
 * re-derived for ALL 45 Table-1 modules through the parallel campaign
 * runner; any mismatch against ground truth exits non-zero.
 *
 * With --chaos, the same 45-module battery runs while a FaultInjector
 * at the documented chaos rates (FaultConfig::chaosDefaults) perturbs
 * the substrate: VRT flips on profiled rows, temperature drift,
 * read-back bit noise, REF jitter and dropped commands. The
 * self-healing pipeline (Row Scout re-validation/eviction, TRR
 * Analyzer quorum voting, fresh-row retries, simulated-time watchdog)
 * must still identify every module correctly.
 *
 * With --profile, the hierarchical span profiler is armed for the whole
 * run and a "what do we optimize next" table — subsystems ranked by
 * exclusive wall time, with simulated-DRAM time alongside — is printed
 * at the end. --profile-folded FILE additionally writes the call tree
 * in folded-stack format ("a;b;c <usec>" lines) ready for
 * flamegraph.pl, and --trace merges the profile into the Chrome trace
 * as nested duration events. --report embeds the profile JSON.
 *
 * With --telemetry FILE, battery/chaos campaigns stream one JSONL
 * heartbeat per finished job (progress, ETA, retry/quarantine totals,
 * metrics snapshot) to FILE — tail it to watch a long sweep live.
 * Validate with scripts/telemetry_check.py.
 *
 * With --journal FILE, battery/chaos campaigns keep a crash-safe
 * write-ahead result journal: every finished module lands on disk
 * (checksummed, fsynced) before it is merged, and --resume reloads the
 * finished jobs and runs only the missing ones — the merged report is
 * bit-identical to an uninterrupted run (scripts/report_diff.py).
 * SIGINT/SIGTERM stop the campaign cooperatively: in-flight jobs are
 * abandoned at the next command boundary, the partial report is still
 * written, and the process exits with the resumable status.
 *
 * Exit codes (documented in README.md):
 *   0 — all modules identified correctly
 *   1 — at least one misidentification or a failed artifact write
 *   2 — usage error
 *   3 — at least one job quarantined (watchdog retry ladder exhausted)
 *   4 — interrupted; resumable via --journal FILE --resume
 *
 * --jobs N sets the campaign worker count for both battery modes
 * (default: hardware concurrency; 1 preserves the serial path).
 * Results are bit-identical for every N — per-module RNG streams are
 * forked off the campaign seed by module name, never by schedule.
 *
 * Everything here is black-box: the program only issues DDR commands
 * and reads data back; the TRR implementation inside the simulated
 * chip is never inspected directly.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>

#include "common/logging.hh"
#include "core/mapping_reveng.hh"
#include "core/reveng.hh"
#include "dram/module.hh"
#include "fault/fault_injector.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "runner/cancellation.hh"
#include "runner/profile_cache.hh"
#include "runner/reveng_job.hh"
#include "softmc/host.hh"

using namespace utrr;

namespace
{

/** Exit-code contract (README.md): resumable > quarantined > failed. */
constexpr int kExitFailed = 1;
constexpr int kExitUsage = 2;
constexpr int kExitQuarantined = 3;
constexpr int kExitInterrupted = 4;

/** Bad command line: report and exit with the usage status. */
[[noreturn]] void
usageError(const std::string &msg)
{
    std::cerr << "error: " << msg << "\n";
    std::exit(kExitUsage);
}

/** Durability-related campaign options threaded from the CLI. */
struct DurabilityOptions
{
    std::string journalPath;
    bool resume = false;
    bool telemetryFsync = false;
};

/**
 * Finish a --profile run: print the exclusive-time ranking table and,
 * when requested, write the folded-stack file for flamegraph.pl.
 * Returns false on a failed folded-file write.
 */
bool
emitProfile(const ProfileTree &tree, const std::string &folded_path)
{
    std::cout << "\n" << tree.table();
    if (folded_path.empty())
        return true;
    std::ofstream out(folded_path);
    if (out)
        tree.foldedWall(out);
    if (!out) {
        warn("cannot write folded profile " + folded_path);
        return false;
    }
    std::cout << "Wrote folded-stack profile (flamegraph.pl input) to "
              << folded_path << "\n";
    return true;
}

/**
 * 45-module identification campaign, fault-free (--battery) or under
 * chaos injection (--chaos). Returns the process exit code.
 */
int
runBatteryCampaign(bool chaos, std::uint64_t seed, int jobs,
                   const std::string &report_path, bool profile,
                   const std::string &profile_folded_path,
                   const std::string &telemetry_path,
                   const DurabilityOptions &durability)
{
    CampaignConfig campaign;
    campaign.jobs = jobs;
    campaign.seed = seed;
    campaign.maxWatchdogRetries = 2;
    if (chaos)
        campaign.faults = FaultConfig::chaosDefaults();
    campaign.journalPath = durability.journalPath;
    campaign.resume = durability.resume;
    // The tag keys the journal to the job body: a battery journal can
    // never resume a chaos campaign (or vice versa).
    campaign.contentTag =
        chaos ? "identify:chaos:v1" : "identify:battery:v1";
    // Cooperative cancellation costs one branch per command; wire it
    // unconditionally so plain batteries are also stoppable.
    installStopSignalHandlers();
    campaign.stopFlag = stopFlagPtr();

    std::unique_ptr<TelemetrySink> telemetry;
    if (!telemetry_path.empty()) {
        telemetry = std::make_unique<TelemetrySink>(
            telemetry_path, durability.telemetryFsync);
        if (!telemetry->good())
            return 1;
        campaign.telemetry = telemetry.get();
        std::cout << "Streaming campaign telemetry to " << telemetry_path
                  << "\n";
    }
    if (!durability.journalPath.empty()) {
        std::cout << "Write-ahead journal: " << durability.journalPath
                  << (durability.resume ? " (resuming)" : "") << "\n";
    }
    const IdentifyJobConfig job_cfg =
        chaos ? IdentifyJobConfig::chaos() : IdentifyJobConfig::battery();

    // Snapshot-at-profile-completion reuse (DESIGN.md §16): watchdog
    // retries restore the scouted device instead of re-scouting. Chaos
    // campaigns bypass the cache inside profiled(), so attaching it
    // unconditionally is safe.
    ProfileCache profiles;
    campaign.profileCache = &profiles;

    CampaignRunner runner(campaign);
    std::cout << "== " << (chaos ? "Chaos" : "Battery")
              << " identification campaign: 45 modules"
              << (chaos ? " under fault injection" : "") << " (seed "
              << seed << ", jobs "
              << (jobs <= 0 ? CampaignRunner::hardwareConcurrency()
                            : jobs)
              << ") ==\n\n";

    const CampaignResult result =
        runner.run(allModuleSpecs(), makeIdentifyJob(job_cfg));

    std::cout << std::left << std::setw(8) << "Module"
              << std::setw(18) << "TRR/REF (truth)"
              << std::setw(18) << "Neigh (truth)"
              << std::setw(10) << "Faults"
              << std::setw(10) << "Retries"
              << "Verdict\n";
    std::uint64_t total_fresh_retries = 0;
    for (const ModuleResult &m : result.modules) {
        if (!m.completed) {
            std::cout << std::left << std::setw(8) << m.module
                      << "(pending — interrupted before completion)\n";
            continue;
        }
        const Json &v = m.verdict;
        auto field = [&v](const char *key) {
            const Json *found = v.find(key);
            return found == nullptr ? std::int64_t{0} : found->asInt();
        };
        const FaultInjector::Stats &stats = m.faultStats;
        const std::uint64_t fault_events = stats.vrtFlips +
            stats.noiseBits + stats.jitteredRefs +
            stats.droppedCommands();
        total_fresh_retries +=
            static_cast<std::uint64_t>(field("fresh_row_retries"));
        std::cout << std::left << std::setw(8) << m.module
                  << std::setw(18)
                  << logFmt("1/", field("period"), " (1/",
                            field("period_truth"), ")")
                  << std::setw(18)
                  << logFmt(field("neighbours"), " (",
                            field("neighbours_truth"), ")")
                  << std::setw(10) << fault_events
                  << std::setw(10) << field("fresh_row_retries")
                  << (m.ok ? "ok" : "MISMATCH")
                  << (m.attempts > 1
                          ? logFmt(" (", m.attempts, " attempts)")
                          : "")
                  << "\n";
        if (!m.error.empty())
            std::cout << "        watchdog: " << m.error << "\n";
    }

    const FaultInjector::Stats &total = result.faultTotals;
    if (chaos) {
        std::cout << "\nInjected faults across the sweep: "
                  << total.vrtFlips << " VRT flips, "
                  << total.noiseBits << " noisy bits, "
                  << total.jitteredRefs << " jittered REF intervals, "
                  << total.droppedCommands() << " dropped commands ("
                  << total.droppedRefs << " REF, " << total.droppedWrs
                  << " WR, " << total.droppedHammerActs
                  << " hammer ACT), " << total.tempSteps
                  << " temperature steps\n";
        std::cout << "Self-healing: " << total_fresh_retries
                  << " fresh-row retries across all modules\n";
    }
    std::cout << "\nCampaign: " << result.jobsUsed << " worker(s), "
              << std::fixed << std::setprecision(1) << result.wallMs
              << " ms wall, " << result.watchdogRetries
              << " watchdog retries, " << result.quarantinedJobs
              << " quarantined\n";
    const ProfileCache::Stats cache_stats = profiles.stats();
    if (cache_stats.hits + cache_stats.misses > 0) {
        std::cout << "Profile cache: " << cache_stats.hits << " hit(s), "
                  << cache_stats.misses << " miss(es) ("
                  << profiles.size() << " profile(s) cached)\n";
    }
    if (result.journaledJobs > 0) {
        std::cout << "Resumed from journal: " << result.journaledJobs
                  << " job(s) restored, " << result.scheduledJobs
                  << " scheduled";
        if (result.journalCorruptRecords > 0 || result.journalTornTail) {
            std::cout << " (" << result.journalCorruptRecords
                      << " corrupt record(s) skipped"
                      << (result.journalTornTail ? ", torn tail dropped"
                                                 : "")
                      << ")";
        }
        std::cout << "\n";
    }
    if (result.interrupted) {
        std::cout << "INTERRUPTED: " << result.pendingJobs
                  << " job(s) still pending"
                  << (durability.journalPath.empty()
                          ? " (run with --journal to make such runs "
                            "resumable)"
                          : "; rerun with --resume to continue")
                  << "\n";
    } else {
        std::cout << (result.allOk()
                          ? "All 45 modules identified correctly.\n"
                          : logFmt(result.failedJobs,
                                   " module(s) MISIDENTIFIED.\n"));
    }

    // Precedence: resumable interruption > quarantine > failure, so
    // orchestration can always tell "try --resume" apart from "a
    // module's watchdog ladder is exhausted" and plain mismatches.
    int exit_code = 0;
    if (!result.allOk())
        exit_code = kExitFailed;
    if (result.quarantinedJobs > 0)
        exit_code = kExitQuarantined;
    if (result.interrupted)
        exit_code = kExitInterrupted;
    ProfileTree profile_tree;
    if (profile) {
        profile_tree = Profiler::instance().collect();
        if (!emitProfile(profile_tree, profile_folded_path) &&
            exit_code == 0) {
            exit_code = kExitFailed;
        }
    }

    if (!report_path.empty()) {
        ExperimentReport report(chaos ? "reverse_engineer_chaos"
                                      : "reverse_engineer_battery");
        report.setSeed(seed);
        report.setConfig("jobs", Json(result.jobsUsed));
        report.setConfig("chaos", Json(chaos));
        if (chaos) {
            const FaultConfig &fault_cfg = campaign.faults;
            report.setConfig("vrt_flip_chance",
                             Json(fault_cfg.vrtFlipChancePerRead));
            report.setConfig("read_noise_chance",
                             Json(fault_cfg.readNoiseChancePerRead));
            report.setConfig("ref_jitter_chance",
                             Json(fault_cfg.refJitterChance));
            report.setConfig("drop_ref_chance",
                             Json(fault_cfg.dropRefChance));
            report.setConfig("drop_wr_chance",
                             Json(fault_cfg.dropWrChance));
            report.setConfig("drop_hammer_act_chance",
                             Json(fault_cfg.dropHammerActChance));
        }
        result.fillReport(report);
        if (profile && !profile_tree.empty())
            report.attachProfile(profile_tree);
        // An interrupted campaign still writes its (partial, clearly
        // marked) report — the journal plus this artifact are what a
        // resume needs to pick up cleanly.
        if (!report.writeFile(report_path))
            return exit_code == 0 ? kExitFailed : exit_code;
        std::cout << "Wrote campaign report to " << report_path << "\n";
    }
    return exit_code;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::kWarn);
    std::string name = "A5";
    bool fast = false;
    bool battery = false;
    bool chaos = false;
    std::uint64_t campaign_seed = 1;
    int jobs = 0; // hardware concurrency
    bool profile_enabled = false;
    std::string trace_path;
    std::string report_path;
    std::string profile_folded_path;
    std::string telemetry_path;
    DurabilityOptions durability;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0) {
            fast = true;
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            profile_enabled = true;
        } else if (std::strcmp(argv[i], "--profile-folded") == 0) {
            if (i + 1 >= argc)
                usageError("--profile-folded needs a file argument");
            profile_enabled = true;
            profile_folded_path = argv[++i];
        } else if (std::strcmp(argv[i], "--telemetry") == 0) {
            if (i + 1 >= argc)
                usageError("--telemetry needs a file argument");
            telemetry_path = argv[++i];
        } else if (std::strcmp(argv[i], "--telemetry-fsync") == 0) {
            durability.telemetryFsync = true;
        } else if (std::strcmp(argv[i], "--journal") == 0) {
            if (i + 1 >= argc)
                usageError("--journal needs a file argument");
            durability.journalPath = argv[++i];
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            durability.resume = true;
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc)
                usageError("--trace needs a file argument");
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--report") == 0) {
            if (i + 1 >= argc)
                usageError("--report needs a file argument");
            report_path = argv[++i];
        } else if (std::strcmp(argv[i], "--no-compile") == 0) {
            // Debugging escape hatch (DESIGN.md §17): run every
            // program through the interpreter reference tier.
            SoftMcHost::setDefaultExecMode(ExecMode::kInterpreted);
        } else if (std::strcmp(argv[i], "--battery") == 0) {
            battery = true;
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            if (i + 1 >= argc)
                usageError("--chaos needs a seed argument");
            chaos = true;
            campaign_seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            if (i + 1 >= argc)
                usageError("--seed needs a value");
            campaign_seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc)
                usageError("--jobs needs a worker count");
            jobs = std::atoi(argv[++i]);
            if (jobs < 1)
                usageError("--jobs needs a positive worker count");
        } else {
            name = argv[i];
        }
    }

    if (profile_enabled)
        Profiler::instance().setEnabled(true);

    if (battery || chaos)
        return runBatteryCampaign(chaos, campaign_seed, jobs,
                                  report_path, profile_enabled,
                                  profile_folded_path, telemetry_path,
                                  durability);
    if (!telemetry_path.empty())
        warn("--telemetry only streams during --battery/--chaos "
             "campaigns; ignoring it for a single-module session");
    if (!durability.journalPath.empty() || durability.resume)
        warn("--journal/--resume apply to --battery/--chaos campaigns; "
             "ignoring them for a single-module session");

    const auto spec_opt = findModuleSpec(name);
    if (!spec_opt)
        usageError("unknown module " + name + " (try A0..A14, B0..B14, "
              "C0..C14)");
    const ModuleSpec spec = *spec_opt;
    DramModule module(spec, 2021);
    SoftMcHost host(module);
    if (!trace_path.empty())
        host.trace().enable(64 * 1024);

    std::cout << "== U-TRR reverse engineering of module " << spec.name
              << " (" << spec.banks << " banks, "
              << spec.rowsPerBank / 1024 << "K rows/bank) ==\n\n";

    std::cout << "[1/3] Discovering the logical-to-physical row "
                 "mapping (§5.3)...\n";
    MappingReveng::Config map_cfg;
    map_cfg.probes = fast ? 5 : 10;
    MappingReveng mapper(host, map_cfg);
    const DiscoveredMapping mapping = mapper.discover();
    std::cout << "      decoder scramble: "
              << scrambleName(mapping.scheme()) << ", "
              << mapping.anomalies().size()
              << " probe rows flagged as remapped\n\n";

    std::cout << "[2/3] Scouting retention-profiled row groups and "
                 "analyzing TRR (§6)...\n";
    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 8 * 1024;
    cfg.consistencyChecks = fast ? 20 : 100;
    TrrReveng reveng(host, mapping, cfg);
    const TrrProfile profile = reveng.discoverAll(!fast);

    std::cout << "\n[3/3] Findings vs the module's ground truth:\n";
    const TrrTraits truth = spec.traits();
    auto line = [](const std::string &what, const std::string &measured,
                   const std::string &expected) {
        std::cout << "      " << what << ": " << measured
                  << "   (ground truth: " << expected << ")\n";
    };
    line("TRR-capable REFs", logFmt("1 in ", profile.trrToRefPeriod),
         logFmt("1 in ", truth.trrToRefPeriod));
    line("victims refreshed per TRR event",
         std::to_string(profile.neighborsRefreshed),
         spec.paired() ? "1 (pair row)"
                       : std::to_string(truth.neighborsRefreshed));
    line("aggressor detection", detectionTypeName(profile.detection),
         truth.detection);
    if (!fast) {
        line("aggressor capacity",
             std::to_string(profile.aggressorCapacity),
             truth.aggressorCapacity < 0
                 ? "unknown"
                 : std::to_string(truth.aggressorCapacity));
        line("detection scope",
             profile.perBank ? "per-bank" : "chip-wide",
             truth.perBank ? "per-bank" : "chip-wide");
        line("regular-refresh period",
             logFmt(profile.regularRefreshPeriodRefs, " REFs"),
             logFmt(spec.refreshPeriodRefs, " REFs"));
    }
    switch (profile.detection) {
      case DetectionType::kCounterBased:
        std::cout << "      counter semantics: "
                  << (profile.countersResetOnDetect
                          ? "reset on detection (Obs. A6); "
                          : "no reset; ")
                  << (profile.tableEntriesPersist
                          ? "entries persist (Obs. A7)"
                          : "entries expire")
                  << (profile.evictsMinCounter
                          ? "; evict-min insertion (Obs. A5)"
                          : "")
                  << "\n";
        break;
      case DetectionType::kSamplingBased:
        std::cout << "      sampler survives TRR refreshes (Obs. B5): "
                  << (profile.samplerRetained ? "yes" : "no") << "\n";
        break;
      case DetectionType::kWindowBased:
        std::cout << "      dummy burst hiding later aggressors "
                     "(Obs. C2): ~"
                  << profile.detectionWindowActs << " ACTs\n";
        break;
      default:
        break;
    }
    std::cout << "\nSummary: " << profile.summary() << "\n";

    int exit_code = 0;
    ProfileTree profile_tree;
    if (profile_enabled) {
        profile_tree = Profiler::instance().collect();
        if (!emitProfile(profile_tree, profile_folded_path))
            exit_code = 1;
    }
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
            warn("cannot write trace file " + trace_path);
            exit_code = 1;
        } else {
            host.trace().exportChromeTrace(
                out, profile_tree.empty() ? nullptr : &profile_tree);
            out.flush();
            if (!out) {
                warn("short write on trace file " + trace_path);
                exit_code = 1;
            } else {
                std::cout << "\nWrote the last " << host.trace().size()
                          << " DDR commands (of "
                          << host.trace().recorded()
                          << " recorded) as a Chrome trace to "
                          << trace_path << "\n";
            }
        }
    }
    if (!report_path.empty()) {
        ExperimentReport report("reverse_engineer");
        report.setConfig("module", Json(spec.name));
        report.setConfig("fast", Json(fast));
        report.setResult("trr_to_ref_period", Json(profile.trrToRefPeriod));
        report.setResult("neighbours_refreshed",
                         Json(profile.neighborsRefreshed));
        report.setResult("detection",
                         Json(detectionTypeName(profile.detection)));
        report.setResult("aggressor_capacity",
                         Json(profile.aggressorCapacity));
        report.setResult("per_bank", Json(profile.perBank));
        report.setResult("summary", Json(profile.summary()));
        if (profile_enabled && !profile_tree.empty())
            report.attachProfile(profile_tree);
        if (!report.writeFile(report_path))
            exit_code = 1;
        else
            std::cout << "Wrote report to " << report_path << "\n";
    }
    return exit_code;
}
