/**
 * @file
 * Full TRR reverse-engineering session on one module (default A5),
 * narrating each discovery the way §6 of the paper does.
 *
 * Usage: reverse_engineer [MODULE] [--fast] [--trace FILE]
 *                         [--report FILE] [--chaos SEED]
 *
 * With --trace, every DDR command of the session is recorded (bounded
 * ring buffer) and written as Chrome trace_event JSON — open the file
 * in chrome://tracing or https://ui.perfetto.dev to see the hammer
 * rounds, REF bursts and retention waits on a timeline.
 *
 * With --report, a structured ExperimentReport (JSON) of the session is
 * written; a failed write exits non-zero.
 *
 * With --chaos, the TRR-to-REF ratio and neighbour count are instead
 * re-derived for ALL 45 modules while a FaultInjector running at the
 * documented chaos rates (FaultConfig::chaosDefaults) perturbs the
 * substrate: VRT flips on profiled rows, temperature drift, read-back
 * bit noise, REF jitter and dropped commands. The self-healing pipeline
 * (Row Scout re-validation/eviction, TRR Analyzer quorum voting,
 * fresh-row retries, simulated-time watchdog) must still identify every
 * module correctly; any mismatch exits non-zero.
 *
 * Everything here is black-box: the program only issues DDR commands
 * and reads data back; the TRR implementation inside the simulated
 * chip is never inspected directly.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "common/logging.hh"
#include "core/mapping_reveng.hh"
#include "core/reveng.hh"
#include "dram/module.hh"
#include "fault/fault_injector.hh"
#include "obs/report.hh"
#include "softmc/host.hh"

using namespace utrr;

namespace
{

/** Neighbour count the identification should measure for @p spec. */
int
expectedNeighbors(const ModuleSpec &spec)
{
    return spec.paired() ? 1 : spec.traits().neighborsRefreshed;
}

/**
 * Chaos sweep: identify every module under default-rate fault
 * injection. Returns the process exit code.
 */
int
runChaosSweep(std::uint64_t seed, const std::string &report_path)
{
    const FaultConfig fault_cfg = FaultConfig::chaosDefaults();

    ExperimentReport report("reverse_engineer_chaos");
    report.setSeed(seed);
    report.setConfig("vrt_flip_chance",
                     Json(fault_cfg.vrtFlipChancePerRead));
    report.setConfig("read_noise_chance",
                     Json(fault_cfg.readNoiseChancePerRead));
    report.setConfig("ref_jitter_chance", Json(fault_cfg.refJitterChance));
    report.setConfig("drop_ref_chance", Json(fault_cfg.dropRefChance));
    report.setConfig("drop_wr_chance", Json(fault_cfg.dropWrChance));
    report.setConfig("drop_hammer_act_chance",
                     Json(fault_cfg.dropHammerActChance));

    std::cout << "== Chaos identification sweep: 45 modules under "
                 "fault injection (seed " << seed << ") ==\n\n";
    std::cout << std::left << std::setw(8) << "Module"
              << std::setw(18) << "TRR/REF (truth)"
              << std::setw(18) << "Neigh (truth)"
              << std::setw(10) << "Faults"
              << std::setw(10) << "Retries"
              << "Verdict\n";

    FaultInjector::Stats total;
    std::uint64_t total_retries = 0;
    int failures = 0;
    std::uint64_t module_index = 0;
    for (const ModuleSpec &spec : allModuleSpecs()) {
        DramModule module(spec, 2021);
        SoftMcHost host(module);
        MetricsRegistry metrics;
        host.attachMetrics(&metrics);
        FaultInjector injector(fault_cfg,
                               seed * 1'000'003 + module_index++);
        host.attachFaultInjector(&injector);

        const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
        TrrRevengConfig cfg;
        cfg.scoutRowEnd = 6 * 1024;
        cfg.consistencyChecks = 15;
        // Under injection the event stream is thinned (broken rows get
        // quarantined, stolen TRR fires are invisible), so a period-17
        // module needs a larger sample than the fault-free fast path:
        // 64 iterations leave it ~3 gap observations, one unlucky
        // breakage away from a degenerate vote.
        cfg.periodIterations = 128;
        cfg.revalidateChecks = 8;
        TrrReveng reveng(host, mapping, cfg);

        // A per-module watchdog: under injection a sick retry loop must
        // fail loudly, not hang the sweep. One simulated hour is far
        // beyond what a healthy identification needs.
        host.setWatchdogBudget(3'600ll * 1'000'000'000);

        int period = 0;
        int neighbours = 0;
        std::string error;
        try {
            period = reveng.discoverTrrRefPeriod();
            neighbours = reveng.discoverNeighborsRefreshed();
        } catch (const WatchdogTimeout &e) {
            error = e.what();
        }
        host.clearWatchdog();

        const TrrTraits truth = spec.traits();
        const int want_neigh = expectedNeighbors(spec);
        const bool ok = error.empty() &&
                        period == truth.trrToRefPeriod &&
                        neighbours == want_neigh;
        failures += ok ? 0 : 1;

        const FaultInjector::Stats &stats = injector.stats();
        total.vrtFlips += stats.vrtFlips;
        total.noiseBits += stats.noiseBits;
        total.jitteredRefs += stats.jitteredRefs;
        total.droppedRefs += stats.droppedRefs;
        total.droppedWrs += stats.droppedWrs;
        total.droppedHammerActs += stats.droppedHammerActs;
        total.tempSteps += stats.tempSteps;
        const std::uint64_t retries = reveng.freshRowRetriesPerformed();
        total_retries += retries;
        const std::uint64_t fault_events =
            stats.vrtFlips + stats.noiseBits + stats.jitteredRefs +
            stats.droppedCommands();

        std::cout << std::left << std::setw(8) << spec.name
                  << std::setw(18)
                  << logFmt("1/", period, " (1/", truth.trrToRefPeriod,
                            ")")
                  << std::setw(18)
                  << logFmt(neighbours, " (", want_neigh, ")")
                  << std::setw(10) << fault_events
                  << std::setw(10) << retries
                  << (ok ? "ok" : "MISMATCH") << "\n";
        if (!error.empty())
            std::cout << "        watchdog: " << error << "\n";

        Json entry = Json::object();
        entry["module"] = Json(spec.name);
        entry["period"] = Json(period);
        entry["period_truth"] = Json(truth.trrToRefPeriod);
        entry["neighbours"] = Json(neighbours);
        entry["neighbours_truth"] = Json(want_neigh);
        entry["fault_events"] = Json(fault_events);
        entry["fresh_row_retries"] = Json(retries);
        entry["ok"] = Json(ok);
        if (!error.empty())
            entry["error"] = Json(error);
        report.addRound(std::move(entry));
    }

    std::cout << "\nInjected faults across the sweep: "
              << total.vrtFlips << " VRT flips, "
              << total.noiseBits << " noisy bits, "
              << total.jitteredRefs << " jittered REF intervals, "
              << total.droppedCommands() << " dropped commands ("
              << total.droppedRefs << " REF, " << total.droppedWrs
              << " WR, " << total.droppedHammerActs << " hammer ACT), "
              << total.tempSteps << " temperature steps\n";
    std::cout << "Self-healing: " << total_retries
              << " fresh-row retries across all modules\n";
    std::cout << (failures == 0
                      ? "\nAll 45 modules identified correctly under "
                        "chaos injection.\n"
                      : logFmt("\n", failures,
                               " module(s) MISIDENTIFIED under chaos "
                               "injection.\n"));

    report.setResult("modules", Json(45));
    report.setResult("failures", Json(failures));
    report.setResult("fresh_row_retries", Json(total_retries));
    report.setResult("dropped_commands", Json(total.droppedCommands()));
    report.setResult("vrt_flips", Json(total.vrtFlips));

    if (!report_path.empty()) {
        if (!report.writeFile(report_path))
            return 1;
        std::cout << "Wrote chaos report to " << report_path << "\n";
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::kWarn);
    std::string name = "A5";
    bool fast = false;
    bool chaos = false;
    std::uint64_t chaos_seed = 1;
    std::string trace_path;
    std::string report_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0) {
            fast = true;
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc)
                fatal("--trace needs a file argument");
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--report") == 0) {
            if (i + 1 >= argc)
                fatal("--report needs a file argument");
            report_path = argv[++i];
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            if (i + 1 >= argc)
                fatal("--chaos needs a seed argument");
            chaos = true;
            chaos_seed = std::strtoull(argv[++i], nullptr, 10);
        } else {
            name = argv[i];
        }
    }

    if (chaos)
        return runChaosSweep(chaos_seed, report_path);

    const auto spec_opt = findModuleSpec(name);
    if (!spec_opt)
        fatal("unknown module " + name + " (try A0..A14, B0..B14, "
              "C0..C14)");
    const ModuleSpec spec = *spec_opt;
    DramModule module(spec, 2021);
    SoftMcHost host(module);
    if (!trace_path.empty())
        host.trace().enable(64 * 1024);

    std::cout << "== U-TRR reverse engineering of module " << spec.name
              << " (" << spec.banks << " banks, "
              << spec.rowsPerBank / 1024 << "K rows/bank) ==\n\n";

    std::cout << "[1/3] Discovering the logical-to-physical row "
                 "mapping (§5.3)...\n";
    MappingReveng::Config map_cfg;
    map_cfg.probes = fast ? 5 : 10;
    MappingReveng mapper(host, map_cfg);
    const DiscoveredMapping mapping = mapper.discover();
    std::cout << "      decoder scramble: "
              << scrambleName(mapping.scheme()) << ", "
              << mapping.anomalies().size()
              << " probe rows flagged as remapped\n\n";

    std::cout << "[2/3] Scouting retention-profiled row groups and "
                 "analyzing TRR (§6)...\n";
    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 8 * 1024;
    cfg.consistencyChecks = fast ? 20 : 100;
    TrrReveng reveng(host, mapping, cfg);
    const TrrProfile profile = reveng.discoverAll(!fast);

    std::cout << "\n[3/3] Findings vs the module's ground truth:\n";
    const TrrTraits truth = spec.traits();
    auto line = [](const std::string &what, const std::string &measured,
                   const std::string &expected) {
        std::cout << "      " << what << ": " << measured
                  << "   (ground truth: " << expected << ")\n";
    };
    line("TRR-capable REFs", logFmt("1 in ", profile.trrToRefPeriod),
         logFmt("1 in ", truth.trrToRefPeriod));
    line("victims refreshed per TRR event",
         std::to_string(profile.neighborsRefreshed),
         spec.paired() ? "1 (pair row)"
                       : std::to_string(truth.neighborsRefreshed));
    line("aggressor detection", detectionTypeName(profile.detection),
         truth.detection);
    if (!fast) {
        line("aggressor capacity",
             std::to_string(profile.aggressorCapacity),
             truth.aggressorCapacity < 0
                 ? "unknown"
                 : std::to_string(truth.aggressorCapacity));
        line("detection scope",
             profile.perBank ? "per-bank" : "chip-wide",
             truth.perBank ? "per-bank" : "chip-wide");
        line("regular-refresh period",
             logFmt(profile.regularRefreshPeriodRefs, " REFs"),
             logFmt(spec.refreshPeriodRefs, " REFs"));
    }
    switch (profile.detection) {
      case DetectionType::kCounterBased:
        std::cout << "      counter semantics: "
                  << (profile.countersResetOnDetect
                          ? "reset on detection (Obs. A6); "
                          : "no reset; ")
                  << (profile.tableEntriesPersist
                          ? "entries persist (Obs. A7)"
                          : "entries expire")
                  << (profile.evictsMinCounter
                          ? "; evict-min insertion (Obs. A5)"
                          : "")
                  << "\n";
        break;
      case DetectionType::kSamplingBased:
        std::cout << "      sampler survives TRR refreshes (Obs. B5): "
                  << (profile.samplerRetained ? "yes" : "no") << "\n";
        break;
      case DetectionType::kWindowBased:
        std::cout << "      dummy burst hiding later aggressors "
                     "(Obs. C2): ~"
                  << profile.detectionWindowActs << " ACTs\n";
        break;
      default:
        break;
    }
    std::cout << "\nSummary: " << profile.summary() << "\n";

    int exit_code = 0;
    if (!trace_path.empty()) {
        std::ofstream out(trace_path);
        if (!out) {
            warn("cannot write trace file " + trace_path);
            exit_code = 1;
        } else {
            host.trace().exportChromeTrace(out);
            out.flush();
            if (!out) {
                warn("short write on trace file " + trace_path);
                exit_code = 1;
            } else {
                std::cout << "\nWrote the last " << host.trace().size()
                          << " DDR commands (of "
                          << host.trace().recorded()
                          << " recorded) as a Chrome trace to "
                          << trace_path << "\n";
            }
        }
    }
    if (!report_path.empty()) {
        ExperimentReport report("reverse_engineer");
        report.setConfig("module", Json(spec.name));
        report.setConfig("fast", Json(fast));
        report.setResult("trr_to_ref_period", Json(profile.trrToRefPeriod));
        report.setResult("neighbours_refreshed",
                         Json(profile.neighborsRefreshed));
        report.setResult("detection",
                         Json(detectionTypeName(profile.detection)));
        report.setResult("aggressor_capacity",
                         Json(profile.aggressorCapacity));
        report.setResult("per_bank", Json(profile.perBank));
        report.setResult("summary", Json(profile.summary()));
        if (!report.writeFile(report_path))
            exit_code = 1;
        else
            std::cout << "Wrote report to " << report_path << "\n";
    }
    return exit_code;
}
