/**
 * @file
 * SoftMC program runner: execute a text program (see
 * src/softmc/assembler.hh for the grammar) against a simulated module
 * and print every captured READ — the simulated twin of running a
 * hand-written SoftMC test program on the FPGA platform.
 *
 * Usage:
 *   softmc_repl [MODULE] <program.smc
 *   softmc_repl [MODULE] program.smc
 *
 * Example program (demonstrates the retention side channel U-TRR is
 * built on):
 *
 *   WRITE 0 100 ones
 *   WAIT 3000ms        # refresh disabled: weak rows decay
 *   READ 0 100
 *   WRITE 0 100 ones
 *   WAITREF 3000ms     # refreshing at the default rate: no decay
 *   READ 0 100
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/logging.hh"
#include "dram/module.hh"
#include "softmc/assembler.hh"
#include "softmc/host.hh"

using namespace utrr;

int
main(int argc, char **argv)
{
    setLogLevel(LogLevel::kWarn);
    std::string module_name = "A5";
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (findModuleSpec(arg))
            module_name = arg;
        else
            path = arg;
    }

    std::stringstream text;
    if (path.empty()) {
        text << std::cin.rdbuf();
    } else {
        std::ifstream file(path);
        if (!file)
            fatal("cannot open " + path);
        text << file.rdbuf();
    }

    const AssembleResult assembled = assembleProgram(text.str());
    if (!assembled.ok())
        fatal(assembled.error);

    const ModuleSpec spec = *findModuleSpec(module_name);
    DramModule module(spec, 99);
    SoftMcHost host(module);
    std::cout << "running " << assembled.program.size()
              << " instructions on module " << spec.name << "\n";

    const ExecResult result = host.execute(assembled.program);
    std::cout << "simulated time: "
              << nsToMs(result.endTime - result.startTime) << " ms, "
              << host.actCount() << " ACTs, "
              << host.refCommandCount() << " REFs\n";

    for (const ReadRecord &read : result.reads) {
        const auto &readout = read.readout;
        // Diff against what the row last stored is not known here; show
        // the raw committed flips instead.
        std::cout << "READ bank " << read.bank << " row " << read.row
                  << " @ " << nsToMs(read.when) << " ms: "
                  << readout.rawFlips().size() << " flipped cells";
        if (!readout.rawFlips().empty()) {
            std::cout << " (cols";
            for (std::size_t i = 0;
                 i < readout.rawFlips().size() && i < 8; ++i)
                std::cout << " " << readout.rawFlips()[i];
            if (readout.rawFlips().size() > 8)
                std::cout << " ...";
            std::cout << ")";
        }
        std::cout << "\n";
    }
    return 0;
}
