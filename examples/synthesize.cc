/**
 * @file
 * Non-uniform pattern synthesis CLI.
 *
 * Searches the Blacksmith-style pattern space per module (attack/synth)
 * and emits the per-TRR **bypass table**: which pattern class beats
 * which mechanism at what per-aggressor hammer budget. The search runs
 * on CampaignRunner jobs, so it parallelizes, journals and resumes
 * exactly like the fuzz CLI.
 *
 *   synthesize --modules all --jobs 0 --report bypass.json
 *   synthesize --modules A0,B0,C0 --budget 32 --emit-table table.json
 *   synthesize --modules all --journal synth.wal --resume
 *
 * The --emit-table artifact (and the report's deterministic
 * projection) is bit-identical for any --jobs N.
 *
 * Exit status: 0 when every selected module was beaten, 1 when some
 * module resisted every candidate, 2 on usage errors, 3 when a job
 * exhausted its watchdog retry ladder, 4 when interrupted
 * (SIGINT/SIGTERM) — resumable with --journal FILE --resume.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/synth.hh"
#include "dram/module_spec.hh"
#include "runner/cancellation.hh"
#include "trr/trr.hh"

using namespace utrr;

namespace
{

int
usage()
{
    std::cerr <<
        "usage: synthesize [options]\n"
        "  --modules LIST       comma-separated module names, or"
        " 'all'\n"
        "                       (default all)\n"
        "  --jobs J             worker threads (default 1; 0 = auto)\n"
        "  --budget N           candidate patterns per module\n"
        "  --positions N        victim anchors tried per candidate\n"
        "  --seed S             search stream seed (default 1)\n"
        "  --module-seed M      silicon seed (default 2021)\n"
        "  --window N           evaluation window in REF slots\n"
        "                       (default: full refresh period)\n"
        "  --no-minimize        keep winners unminimized\n"
        "  --journal FILE       crash-safe write-ahead result journal\n"
        "  --resume             reload finished modules from"
        " --journal\n"
        "  --emit-table FILE    write the bypass table alone (the\n"
        "                       jobs-invariant artifact)\n"
        "  --report FILE        write the full ExperimentReport\n"
        "  --list-modules       print module names and exit\n";
    return 2;
}

std::vector<ModuleSpec>
selectModules(const std::string &list)
{
    if (list.empty() || list == "all")
        return allModuleSpecs();
    std::vector<ModuleSpec> specs;
    std::istringstream is(list);
    std::string name;
    while (std::getline(is, name, ',')) {
        const auto spec = findModuleSpec(name);
        if (!spec) {
            std::cerr << "synthesize: unknown module " << name
                      << " (--list-modules)\n";
            std::exit(2);
        }
        specs.push_back(*spec);
    }
    return specs;
}

bool
writeText(const std::string &path, const std::string &text)
{
    std::ofstream os(path);
    os << text << "\n";
    if (!os) {
        std::cerr << "synthesize: cannot write " << path << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string modules_arg = "all";
    std::string table_path;
    std::string report_path;
    SynthCampaignConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "synthesize: " << arg
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--modules") {
            modules_arg = next();
        } else if (arg == "--jobs") {
            cfg.jobs = std::stoi(next());
        } else if (arg == "--budget") {
            cfg.synth.attempts = std::stoi(next());
        } else if (arg == "--positions") {
            cfg.synth.positions = std::stoi(next());
        } else if (arg == "--seed") {
            cfg.seed = std::stoull(next());
        } else if (arg == "--module-seed") {
            cfg.synth.moduleSeed = std::stoull(next());
        } else if (arg == "--window") {
            cfg.synth.windowRefs = std::stoi(next());
        } else if (arg == "--no-minimize") {
            cfg.synth.minimize = false;
        } else if (arg == "--journal") {
            cfg.journalPath = next();
        } else if (arg == "--resume") {
            cfg.resume = true;
        } else if (arg == "--emit-table") {
            table_path = next();
        } else if (arg == "--report") {
            report_path = next();
        } else if (arg == "--list-modules") {
            for (const ModuleSpec &spec : allModuleSpecs())
                std::cout << spec.name << "\n";
            return 0;
        } else {
            return usage();
        }
    }

    const std::vector<ModuleSpec> specs = selectModules(modules_arg);
    std::cout << "synthesizing patterns for " << specs.size()
              << " module(s): " << cfg.synth.attempts
              << " candidates x " << cfg.synth.positions
              << " positions each, seed " << cfg.seed
              << ", silicon seed " << cfg.synth.moduleSeed << "\n";
    if (!cfg.journalPath.empty()) {
        std::cout << "write-ahead journal: " << cfg.journalPath
                  << (cfg.resume ? " (resuming)" : "") << "\n";
    }

    // SIGINT/SIGTERM stop the campaign cooperatively: finished modules
    // are already journaled, in-flight ones re-run on --resume.
    installStopSignalHandlers();
    cfg.stopFlag = stopFlagPtr();

    const CampaignResult result = runSynthCampaign(specs, cfg);
    const Json table = bypassTable(result, specs);

    // Per-mechanism roll-up on stdout.
    if (const Json *by_trr = table.find("by_trr")) {
        for (std::size_t i = 0; i < by_trr->size(); ++i) {
            const Json &row = by_trr->at(i);
            std::cout << "  " << row.find("trr")->asString() << ": "
                      << row.find("beaten")->asInt() << "/"
                      << row.find("modules")->asInt() << " beaten";
            if (const Json *cls = row.find("pattern_classes")) {
                std::cout << " [";
                for (std::size_t c = 0; c < cls->size(); ++c) {
                    std::cout << (c == 0 ? "" : ", ")
                              << cls->at(c).asString();
                }
                std::cout << "]";
            }
            std::cout << "\n";
        }
    }

    int beaten = 0;
    int completed = 0;
    for (const ModuleResult &m : result.modules) {
        if (!m.completed)
            continue;
        ++completed;
        const Json *flag = m.verdict.find("beaten");
        beaten += (flag != nullptr && flag->asBool()) ? 1 : 0;
    }
    std::cout << beaten << "/" << completed
              << " module(s) beaten on " << result.jobsUsed
              << " worker(s) in " << result.wallMs << " ms\n";
    if (result.journaledJobs > 0) {
        std::cout << result.journaledJobs
                  << " module(s) restored from journal, "
                  << result.scheduledJobs << " scheduled\n";
    }

    if (!table_path.empty() && !writeText(table_path, table.dump(1)))
        return 2;
    if (!report_path.empty()) {
        ExperimentReport report("synthesize");
        fillBypassReport(report, result, specs, cfg);
        if (!report.writeFile(report_path))
            return 2;
    }

    if (result.interrupted) {
        std::cout << "INTERRUPTED: " << result.pendingJobs
                  << " module(s) pending"
                  << (cfg.journalPath.empty()
                          ? "" : "; rerun with --resume to continue")
                  << "\n";
        return 4;
    }
    if (result.quarantinedJobs > 0) {
        std::cout << result.quarantinedJobs
                  << " module(s) QUARANTINED (watchdog retry ladder "
                     "exhausted)\n";
        return 3;
    }
    return beaten == completed ? 0 : 1;
}
