/**
 * @file
 * Differential fuzzing CLI.
 *
 * Generates protocol-valid SoftMC command programs and checks every one
 * of them against the naive reference model with the full oracle suite
 * (differential read-back, DDR timing legality, TRR accounting,
 * same-seed determinism). Violations are delta-debugged to minimal
 * repros and optionally persisted as corpus entries.
 *
 *   fuzz --module A0 --count 500 --seed 1 --jobs 4
 *   fuzz --module C3 --count 50 --long-waits --corpus-dir /tmp/corpus
 *   fuzz --replay tests/corpus/seed-a0-retention.prog
 *
 * Exit status (README.md): 0 when every program is clean, 1 on any
 * oracle violation (this is the CI fuzz-smoke contract), 2 on usage
 * errors, 3 when a job exhausted its watchdog retry ladder
 * (quarantined), 4 when interrupted (SIGINT/SIGTERM) — resumable with
 * --journal FILE --resume.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "check/corpus.hh"
#include "check/fuzz_campaign.hh"
#include "check/oracles.hh"
#include "dram/module_spec.hh"
#include "runner/cancellation.hh"
#include "softmc/assembler.hh"
#include "softmc/host.hh"
#include "trr/trr.hh"

using namespace utrr;

namespace
{

int
usage()
{
    std::cerr <<
        "usage: fuzz [options]\n"
        "  --module NAME        module spec to fuzz (default A0)\n"
        "  --count N            programs to check (default 100)\n"
        "  --seed S             fuzz stream seed (default 1)\n"
        "  --module-seed M      silicon seed (default 2021)\n"
        "  --jobs J             worker threads (default 1; 0 = auto)\n"
        "  --max-ops K          max body ops per program\n"
        "  --max-hammer N       cap hammer burst length\n"
        "  --long-waits         always use long decay windows\n"
        "  --no-minimize        keep findings unminimized\n"
        "  --no-compile         run programs through the interpreter\n"
        "                       (reference tier, DESIGN.md §17)\n"
        "  --journal FILE       crash-safe write-ahead result journal\n"
        "  --resume             reload finished checks from --journal\n"
        "  --corpus-dir DIR     save minimized repros as DIR/*.prog\n"
        "  --replay FILE        replay one corpus entry instead\n"
        "  --emit DIR           save generated programs as corpus\n"
        "                       entries instead of checking them\n"
        "  --list-modules       print module names and exit\n";
    return 2;
}

int
replayEntry(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::cerr << "fuzz: cannot read " << path << "\n";
        return 2;
    }
    std::ostringstream text;
    text << is.rdbuf();

    CorpusEntry entry;
    const std::string error = parseCorpusEntry(text.str(), entry);
    if (!error.empty()) {
        std::cerr << "fuzz: " << path << ": " << error << "\n";
        return 2;
    }
    const auto spec = findModuleSpec(entry.module);
    if (!spec) {
        std::cerr << "fuzz: unknown module " << entry.module << "\n";
        return 2;
    }

    OracleConfig oracle;
    oracle.moduleSeed = entry.moduleSeed;
    const OracleReport report =
        runOracleSuite(*spec, entry.program, oracle);
    std::cout << path << " [" << entry.module << ", seed "
              << entry.moduleSeed << ", " << entry.program.size()
              << " instrs]: " << report.summary() << "\n";
    return report.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string module_name = "A0";
    std::string corpus_dir;
    std::string replay_path;
    std::string emit_dir;
    FuzzCampaignOptions options;
    options.count = 100;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "fuzz: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--module") {
            module_name = next();
        } else if (arg == "--count") {
            options.count = std::stoull(next());
        } else if (arg == "--seed") {
            options.fuzzSeed = std::stoull(next());
        } else if (arg == "--module-seed") {
            options.oracle.moduleSeed = std::stoull(next());
        } else if (arg == "--jobs") {
            options.jobs = std::stoi(next());
        } else if (arg == "--max-ops") {
            options.fuzz.maxOps = std::stoi(next());
            options.fuzz.minOps =
                std::min(options.fuzz.minOps, options.fuzz.maxOps);
        } else if (arg == "--max-hammer") {
            options.fuzz.hammerMax = std::stoi(next());
            options.fuzz.hammerMin =
                std::min(options.fuzz.hammerMin, options.fuzz.hammerMax);
        } else if (arg == "--long-waits") {
            options.fuzz.longWaitChance = 1.0;
        } else if (arg == "--no-minimize") {
            options.minimize = false;
        } else if (arg == "--no-compile") {
            SoftMcHost::setDefaultExecMode(ExecMode::kInterpreted);
        } else if (arg == "--journal") {
            options.journalPath = next();
        } else if (arg == "--resume") {
            options.resume = true;
        } else if (arg == "--corpus-dir") {
            corpus_dir = next();
        } else if (arg == "--replay") {
            replay_path = next();
        } else if (arg == "--emit") {
            emit_dir = next();
        } else if (arg == "--list-modules") {
            for (const ModuleSpec &spec : allModuleSpecs())
                std::cout << spec.name << "\n";
            return 0;
        } else {
            return usage();
        }
    }

    if (!replay_path.empty())
        return replayEntry(replay_path);

    const auto spec = findModuleSpec(module_name);
    if (!spec) {
        std::cerr << "fuzz: unknown module " << module_name
                  << " (--list-modules)\n";
        return 2;
    }

    if (!emit_dir.empty()) {
        // Anchor generation: dump fixed-seed programs as corpus
        // entries (oracle "none") for test_corpus to replay.
        const ProgramFuzzer fuzzer(*spec, options.fuzz);
        for (std::uint64_t i = 0; i < options.count; ++i) {
            CorpusEntry entry;
            entry.module = spec->name;
            entry.moduleSeed = options.oracle.moduleSeed;
            entry.fuzzSeed = options.fuzzSeed;
            entry.fuzzIndex = i;
            entry.note = "fixed-seed clean anchor";
            entry.program = fuzzer.generate(options.fuzzSeed, i);
            const std::string path = emit_dir + "/" + spec->name +
                "-s" + std::to_string(options.fuzzSeed) + "-i" +
                std::to_string(i) + ".prog";
            const std::string error = saveCorpusEntry(entry, path);
            if (!error.empty()) {
                std::cerr << "fuzz: " << error << "\n";
                return 2;
            }
            std::cout << "emitted " << path << " ("
                      << entry.program.size() << " instrs)\n";
        }
        return 0;
    }

    std::cout << "fuzzing " << spec->name << " (TRR "
              << trrVersionName(spec->trr) << "): " << options.count
              << " programs, fuzz seed " << options.fuzzSeed
              << ", silicon seed " << options.oracle.moduleSeed << "\n";
    if (!options.journalPath.empty()) {
        std::cout << "write-ahead journal: " << options.journalPath
                  << (options.resume ? " (resuming)" : "") << "\n";
    }

    // SIGINT/SIGTERM stop the campaign cooperatively: finished checks
    // are already journaled, in-flight ones are abandoned and re-run
    // on --resume.
    installStopSignalHandlers();
    options.stopFlag = stopFlagPtr();

    const FuzzCampaignResult result = runFuzzCampaign(*spec, options);

    const auto *ops = result.campaign.merged.findCounter(
        "module." + spec->name + ".fuzz.ops");
    const auto *reads = result.campaign.merged.findCounter(
        "module." + spec->name + ".fuzz.reads");
    std::cout << result.programs << " programs ("
              << (ops != nullptr ? ops->value : 0) << " instructions, "
              << (reads != nullptr ? reads->value : 0)
              << " reads) checked on " << result.campaign.jobsUsed
              << " worker(s) in " << result.campaign.wallMs << " ms\n";

    if (result.campaign.journaledJobs > 0) {
        std::cout << result.campaign.journaledJobs
                  << " check(s) restored from journal, "
                  << result.campaign.scheduledJobs << " scheduled\n";
    }
    if (result.campaign.interrupted) {
        std::cout << "INTERRUPTED: " << result.campaign.pendingJobs
                  << " check(s) pending"
                  << (options.journalPath.empty()
                          ? "" : "; rerun with --resume to continue")
                  << "\n";
        return 4;
    }
    if (result.campaign.quarantinedJobs > 0) {
        std::cout << result.campaign.quarantinedJobs
                  << " check(s) QUARANTINED (watchdog retry ladder "
                     "exhausted)\n";
        return 3;
    }
    if (result.clean()) {
        std::cout << "all oracles clean\n";
        return 0;
    }

    std::cout << result.violating << " violating program(s), "
              << result.findings.size() << " minimized:\n";
    for (const FuzzFinding &finding : result.findings) {
        std::cout << "  #" << finding.index << " [" << finding.oracle
                  << "] " << finding.detail << "\n"
                  << "     " << finding.program.size()
                  << " instrs -> " << finding.minimized.size()
                  << " after " << finding.minimizeEvaluations
                  << " evaluations\n";
        if (corpus_dir.empty())
            continue;
        CorpusEntry entry;
        entry.module = spec->name;
        entry.moduleSeed = options.oracle.moduleSeed;
        entry.fuzzSeed = options.fuzzSeed;
        entry.fuzzIndex = finding.index;
        entry.oracle = finding.oracle;
        entry.program = finding.minimized;
        const std::string path = corpus_dir + "/" + spec->name + "-i" +
            std::to_string(finding.index) + ".prog";
        const std::string error = saveCorpusEntry(entry, path);
        if (error.empty())
            std::cout << "     saved " << path << "\n";
        else
            std::cerr << "     " << error << "\n";
    }
    return 1;
}
