/**
 * @file
 * Reproduces Fig. 8: the distribution of RowHammer bit flips per DRAM
 * row as a function of the number of hammers per aggressor per REF,
 * for the three representative modules A5, B8 and C7 (the most
 * vulnerable module of each vendor's headline TRR version).
 *
 * Each series sweeps the aggressor-hammer knob of the vendor's custom
 * pattern; fewer aggressor hammers mean more dummy hammers, and the
 * box-and-whisker summary of flips per row reproduces the figure's
 * interior optimum (vendor A) and saturation shapes (vendors B, C).
 */

#include <iostream>

#include "attack/sweep.hh"
#include "bench_common.hh"
#include "common/stats.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

namespace
{

std::vector<int>
hammerSweepFor(const ModuleSpec &spec)
{
    switch (spec.vendor) {
      case 'A':
        // Hammers per aggressor per REF around the paper's optimum 26.
        return {8, 16, 24, 32, 48, 64};
      case 'B':
        // Hammers per aggressor per 4-REF window (x-axis divides by 4).
        return {120, 180, 220, 260, 400, 560};
      case 'C':
      default:
        // Hammers per aggressor per 17-REF window.
        return {200, 400, 800, 1'100, 1'180, 1'230};
    }
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    std::vector<std::string> modules = {"A5", "B8", "C7"};
    if (!args.module.empty())
        modules = {args.module};

    for (const std::string &name : modules) {
        const ModuleSpec spec = *findModuleSpec(name);
        DramModule module(spec, args.seed);
        SoftMcHost host(module);
        const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);

        TextTable table(logFmt(
            "Fig. 8 (", name, ") — bit flips per row vs hammers per "
            "aggressor per REF"));
        table.header({"hammers/aggr/REF", "min", "q1", "median", "q3",
                      "max", "mean", "rows"});

        for (int hammers : hammerSweepFor(spec)) {
            SweepConfig cfg;
            cfg.positions = args.positionsOrDefault(16);
            cfg.aggressorHammers = hammers;
            const SweepResult sweep = sweepCustomPattern(
                host, mapping, defaultCustomParams(spec), cfg);
            const BoxStats stats =
                BoxStats::compute(sweep.flipsPerRow);
            table.addRow(fmtDouble(sweep.hammersPerAggrPerRef, 1),
                         stats.min, stats.q1, stats.median, stats.q3,
                         stats.max, fmtDouble(stats.mean),
                         static_cast<int>(stats.count));
            std::cerr << "." << std::flush;
        }
        std::cerr << "\n";
        table.print(std::cout);
    }
    std::cout << "\nPaper shape: vendor A peaks near 26 hammers "
                 "(aggressors must stay evictable); vendors B and C "
                 "collapse when aggressor hammers crowd out the "
                 "diverting dummy activations.\n";
    return 0;
}
