/**
 * @file
 * Reproduces the §6.3 vendor-C experiments (Observations C1-C3) on the
 * three C_TRR versions, black-box: deferrable TRR cadence, the
 * post-TRR detection window with its early-ACT bias, and the
 * paired-row organization of C0-8.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/reveng.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

namespace
{

void
analyze(const std::string &name, const BenchArgs &args, TextTable &table)
{
    const ModuleSpec spec = *findModuleSpec(name);
    DramModule module(spec, args.seed);
    SoftMcHost host(module);
    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 8 * 1024;
    cfg.consistencyChecks = args.quick ? 15 : 40;
    TrrReveng reveng(host,
                     DiscoveredMapping(spec.scramble, spec.rowsPerBank),
                     cfg);

    const int period = reveng.discoverTrrRefPeriod();
    const int neighbours = reveng.discoverNeighborsRefreshed();
    const DetectionType detection = reveng.discoverDetectionType();
    const int window =
        args.quick ? 0 : reveng.discoverDetectionWindow();

    table.addRow(
        name, trrVersionName(spec.trr), logFmt("1/", period),
        logFmt("1/", spec.traits().trrToRefPeriod),
        detectionTypeName(detection),
        window > 0 ? logFmt("~", window, " ACTs") : std::string("-"),
        spec.paired()
            ? (neighbours == 1 ? "pair row only" : "unexpected")
            : logFmt(neighbours, " neighbours"));
    std::cerr << "." << std::flush;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    TextTable table("Vendor C observations (C1-C3)");
    table.header({"Module", "Version", "TRR/REF", "(paper)",
                  "Detection", "Evasion burst", "Refresh target"});

    std::vector<std::string> modules = {"C0", "C9", "C12"};
    if (!args.module.empty())
        modules = {args.module};
    for (const std::string &name : modules)
        analyze(name, args, table);
    std::cerr << "\n";
    table.print(std::cout);
    std::cout
        << "\nPaper: TRR eligible on every 17th/9th/8th REF and\n"
           "deferrable (C1); aggressors detected only among the first\n"
           "ACTs after a TRR event with earlier rows strongly favoured\n"
           "(C2) — 'evasion burst' is the measured number of leading\n"
           "dummy ACTs that reliably hides a later aggressor; paired\n"
           "modules refresh only the pair row of the detected\n"
           "aggressor (C3).\n";
    return 0;
}
