/**
 * @file
 * Extension bench (paper §8 future work): evaluate controller-side
 * mitigations against the U-TRR custom patterns that defeat the
 * in-DRAM TRR.
 *
 * For one module per vendor, the U-TRR custom pattern runs against
 * (a) the module's TRR alone, and (b) TRR plus each controller policy
 * (PARA at two strengths, Graphene, BlockHammer). The table reports
 * the vulnerable-row fraction plus each policy's cost: ordered victim
 * refreshes (extra ACTs) or injected throttling delay.
 *
 * A second table shows the mapping-awareness pitfall: a controller
 * that assumes logical adjacency refreshes the wrong rows on modules
 * with a scrambled row decoder.
 */

#include <iostream>
#include <memory>

#include "attack/sweep.hh"
#include "bench_common.hh"
#include "mitigation/blockhammer.hh"
#include "mitigation/graphene.hh"
#include "mitigation/para.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

namespace
{

struct PolicyResult
{
    double vulnerable = 0.0;
    int maxFlips = 0;
    std::uint64_t refreshes = 0;
    Time delay = 0;
};

PolicyResult
evaluate(const ModuleSpec &spec, ControllerMitigation *policy,
         const BenchArgs &args)
{
    DramModule module(spec, args.seed);
    SoftMcHost host(module);
    if (policy != nullptr)
        host.attachMitigation(policy);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    SweepConfig cfg;
    cfg.positions = args.positionsOrDefault(10);
    const SweepResult sweep = sweepCustomPattern(
        host, mapping, defaultCustomParams(spec), cfg);
    PolicyResult result;
    result.vulnerable = sweep.vulnerableFraction();
    result.maxFlips = sweep.maxRowFlips;
    if (policy != nullptr) {
        result.refreshes = policy->refreshesOrdered();
        result.delay = policy->delayInjected();
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    TextTable table(
        "Controller mitigations vs the U-TRR custom patterns");
    table.header({"Module", "Policy", "%Vulnerable", "max flips/row",
                  "victim refreshes", "throttle delay (ms)"});

    std::vector<std::string> modules = {"A5", "B8", "C9"};
    if (!args.module.empty())
        modules = {args.module};

    for (const std::string &name : modules) {
        const ModuleSpec spec = *findModuleSpec(name);

        const PolicyResult none = evaluate(spec, nullptr, args);
        table.addRow(name, "TRR only", fmtPercent(none.vulnerable),
                     none.maxFlips, "-", "-");

        Para::Params weak_params;
        weak_params.probability = 0.0001;
        Para weak_para(weak_params, args.seed);
        const PolicyResult weak = evaluate(spec, &weak_para, args);
        table.addRow(name, "+PARA p=1e-4", fmtPercent(weak.vulnerable),
                     weak.maxFlips, weak.refreshes, "-");

        Para::Params strong_params;
        strong_params.probability = 0.01;
        Para strong_para(strong_params, args.seed);
        const PolicyResult strong = evaluate(spec, &strong_para, args);
        table.addRow(name, "+PARA p=1e-2",
                     fmtPercent(strong.vulnerable), strong.maxFlips,
                     strong.refreshes, "-");

        Graphene::Params graphene_params;
        graphene_params.threshold = 2'000;
        Graphene graphene(spec.banks, graphene_params);
        const PolicyResult g = evaluate(spec, &graphene, args);
        table.addRow(name, "+Graphene T=2K", fmtPercent(g.vulnerable),
                     g.maxFlips, g.refreshes, "-");

        BlockHammer::Params bh_params;
        bh_params.blacklistThreshold = 1'024;
        BlockHammer bh(spec.banks, bh_params);
        const PolicyResult b = evaluate(spec, &bh, args);
        table.addRow(name, "+BlockHammer", fmtPercent(b.vulnerable),
                     b.maxFlips, b.refreshes,
                     fmtDouble(nsToMs(b.delay), 1));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);

    // Mapping-awareness pitfall: run Graphene on a module whose row
    // decoder scrambles addresses vs an identical module without
    // scrambling.
    TextTable pitfall(
        "Mapping pitfall — logical-adjacency refreshes on a scrambled "
        "decoder");
    pitfall.header({"Decoder", "%Vulnerable under +Graphene"});
    for (bool scrambled : {false, true}) {
        ModuleSpec spec = *findModuleSpec("A5");
        spec.scramble = scrambled ? RowScramble::kSwapHalfPairs
                                  : RowScramble::kSequential;
        Graphene::Params params;
        params.threshold = 2'000;
        Graphene graphene(spec.banks, params);
        const PolicyResult result = evaluate(spec, &graphene, args);
        pitfall.addRow(scrambled ? "swap-half-pairs (A-style)"
                                 : "sequential",
                       fmtPercent(result.vulnerable));
    }
    pitfall.print(std::cout);
    std::cout
        << "\nTracking mitigations with worst-case guarantees "
           "(Graphene, BlockHammer) are not fooled by the dummy-row "
           "diversions that defeat the reverse-engineered TRRs; "
           "low-probability PARA is. For the swap-half-pairs decoder "
           "the two double-sided aggressors' logical neighbourhoods "
           "happen to jointly cover every victim, so logical-adjacency "
           "refreshes still protect; decoder scrambles that displace "
           "rows further than the mitigation's blast radius would "
           "break that (paper §5.3's motivation for knowing the "
           "physical mapping).\n";
    return 0;
}
