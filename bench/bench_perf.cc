/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): command throughput of
 * the substrate. These gate the wall-clock cost of the experiment
 * harnesses (a full Fig. 9 sweep issues hundreds of millions of ACTs).
 *
 * On top of the microbenches, a campaign section measures the parallel
 * runner: the identification battery over a vendor-balanced module
 * subset at --jobs 1 vs --jobs hw_concurrency, recording both wall
 * times and the speedup (and asserting the verdicts are bit-identical,
 * the runner's determinism contract).
 *
 * Results land in BENCH_perf.json with populated rounds (one per
 * benchmark run), results (campaign + speedup summary) and timing
 * (campaign wall time), so runs can be diffed mechanically.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "attack/sweep.hh"
#include "core/row_scout.hh"
#include "dram/module.hh"
#include "obs/report.hh"
#include "runner/reveng_job.hh"
#include "softmc/host.hh"

namespace
{

using namespace utrr;

ModuleSpec
benchSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    return spec;
}

void
BM_HammerNoTrr(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    for (auto _ : state)
        host.hammer(0, 5'000, 1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HammerNoTrr);

void
BM_HammerWithVendorATrr(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kATrr1), 1);
    SoftMcHost host(module);
    for (auto _ : state)
        host.hammer(0, 5'000, 1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HammerWithVendorATrr);

void
BM_RefCommand(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kATrr1), 1);
    SoftMcHost host(module);
    // Touch some rows so the refresh sweep has work to do.
    for (Row r = 0; r < 512; ++r)
        host.writeRow(0, r * 64, DataPattern::allOnes());
    for (auto _ : state)
        host.ref();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefCommand);

void
BM_WriteReadRow(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    Row row = 0;
    for (auto _ : state) {
        host.writeRow(0, row, DataPattern::allOnes());
        benchmark::DoNotOptimize(host.readRow(0, row));
        row = (row + 1) % 4'096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteReadRow);

void
BM_RetentionScan(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 2);
    SoftMcHost host(module);
    RowScoutConfig cfg;
    cfg.rowEnd = static_cast<Row>(state.range(0));
    cfg.consistencyChecks = 10;
    RowScout scout(host,
                   DiscoveredMapping::identity(
                       module.spec().rowsPerBank),
                   cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(scout.scanFailingRows(msToNs(500)));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RetentionScan)->Arg(1'024)->Arg(8'192);

void
BM_RefreshSweep(benchmark::State &state)
{
    // Per-REF cost of the regular refresh sweep with a populated bank:
    // exercises the flat slot-table scan of DramBank::refreshRange and
    // the restoreCharge fast path (rows well inside their retention).
    DramModule module(benchSpec(TrrVersion::kNone), 4);
    SoftMcHost host(module);
    const Row rows = static_cast<Row>(state.range(0));
    for (Row r = 0; r < rows; ++r)
        host.writeRow(0, r, DataPattern::allOnes());
    for (auto _ : state)
        host.refBurst(256);
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RefreshSweep)->Arg(1'024)->Arg(8'192);

void
BM_ReadOpenRow(benchmark::State &state)
{
    // Pure RD cost on an open row: with copy-on-write readouts this is
    // O(1) regardless of how many overrides/flips the row carries.
    DramModule module(benchSpec(TrrVersion::kNone), 5);
    SoftMcHost host(module);
    host.writeRow(0, 100, DataPattern::checkerboard());
    host.act(0, 100);
    for (auto _ : state)
        benchmark::DoNotOptimize(host.rd(0));
    host.pre(0);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadOpenRow);

void
BM_AttackPosition(benchmark::State &state)
{
    const ModuleSpec spec = *findModuleSpec("A5");
    DramModule module(spec, 3);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    const CustomPatternParams params = defaultCustomParams(spec);
    AttackEvaluator evaluator(host);
    Row anchor = 1'000;
    for (auto _ : state) {
        auto pattern =
            makeCustomPattern(params, host, mapping, 0, anchor);
        benchmark::DoNotOptimize(evaluator.run(
            *pattern, {{0, mapping.toLogical(anchor)}}, 512));
        anchor += 64;
    }
    state.SetItemsProcessed(state.iterations() * 512); // REF slots
}
BENCHMARK(BM_AttackPosition);

/**
 * Console reporter that additionally captures every run into a metrics
 * registry ("<benchmark>.real_ns" / ".items_per_second" gauges and
 * "<benchmark>.iterations" counters) and into per-benchmark report
 * rounds, so the JSON artifact carries the full per-run timing.
 */
class RegistryReporter : public benchmark::ConsoleReporter
{
  public:
    RegistryReporter(MetricsRegistry &registry, ExperimentReport &report)
        : registry(registry), report(report)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            const std::string name = run.benchmark_name();
            const double real_ns = run.GetAdjustedRealTime();
            registry.gauge(name + ".real_ns").set(real_ns);
            registry.counter(name + ".iterations")
                .inc(static_cast<std::uint64_t>(run.iterations));
            ++benchmarks;

            Json round = Json::object();
            round["benchmark"] = Json(name);
            round["real_ns"] = Json(real_ns);
            round["iterations"] =
                Json(static_cast<std::int64_t>(run.iterations));
            const auto items = run.counters.find("items_per_second");
            if (items != run.counters.end()) {
                registry.gauge(name + ".items_per_second")
                    .set(items->second);
                round["items_per_second"] = Json(double(items->second));
            }
            report.addRound(std::move(round));
        }
    }

    int benchmarkCount() const { return benchmarks; }

  private:
    MetricsRegistry &registry;
    ExperimentReport &report;
    int benchmarks = 0;
};

/**
 * Vendor-balanced module subset for the campaign speedup measurement:
 * big enough to keep every worker busy, small enough that the bench
 * stays minutes, not hours, on one core.
 */
std::vector<ModuleSpec>
campaignSpecs()
{
    std::vector<ModuleSpec> specs;
    for (const ModuleSpec &spec : allModuleSpecs()) {
        // A0, A3, ..., C12: every third module of each vendor.
        const int idx = spec.name[1] - '0';
        if ((spec.name.size() == 2 && idx % 3 == 0) ||
            spec.name == "A12" || spec.name == "B12" ||
            spec.name == "C12")
            specs.push_back(spec);
    }
    return specs;
}

/** Wall milliseconds of one battery campaign at the given job count. */
double
campaignWallMs(const std::vector<ModuleSpec> &specs, int jobs,
               CampaignResult &result_out)
{
    CampaignConfig config;
    config.jobs = jobs;
    config.seed = 1;
    CampaignRunner runner(config);
    const auto begin = std::chrono::steady_clock::now();
    result_out =
        runner.run(specs, makeIdentifyJob(IdentifyJobConfig::battery()));
    const auto delta = std::chrono::steady_clock::now() - begin;
    return std::chrono::duration<double, std::milli>(delta).count();
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    MetricsRegistry registry;
    ExperimentReport report("bench_perf");
    RegistryReporter reporter(registry, report);
    benchmark::RunSpecifiedBenchmarks(&reporter);

    report.setResult("benchmarks", Json(reporter.benchmarkCount()));

    // CI perf-guard mode: microbenches only, no campaign measurement
    // (scripts/bench_check.py compares the per-benchmark rounds).
    const char *skip_env = std::getenv("UTRR_BENCH_SKIP_CAMPAIGN");
    if (skip_env != nullptr && skip_env[0] != '\0' &&
        skip_env[0] != '0') {
        report.attachMetrics(registry);
        const bool wrote = report.writeFile("BENCH_perf.json");
        benchmark::Shutdown();
        return wrote ? 0 : 1;
    }

    // Campaign speedup: the identification battery serial vs parallel.
    // The parallel leg always asks for >= 4 workers: on a 1-core host
    // hardware_concurrency() is 1, which used to silently measure the
    // serial path twice (the recorded runner_jobs: 1 / speedup 1.03x).
    // The runner itself shares nothing on the hot path, so the extra
    // workers are harmless on small machines and scale on real ones.
    // UTRR_BENCH_JOBS overrides the worker count explicitly.
    const std::vector<ModuleSpec> specs = campaignSpecs();
    const int hw = CampaignRunner::hardwareConcurrency();
    int parallel_jobs = std::max(4, hw);
    if (const char *env = std::getenv("UTRR_BENCH_JOBS")) {
        const int v = std::atoi(env);
        if (v > 0)
            parallel_jobs = v;
    }
    CampaignResult serial;
    CampaignResult parallel;
    const double serial_ms = campaignWallMs(specs, 1, serial);
    const double parallel_ms =
        campaignWallMs(specs, parallel_jobs, parallel);
    const double speedup =
        parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
    const bool identical =
        serial.verdicts().dump() == parallel.verdicts().dump();

    registry.gauge("runner.serial_ms").set(serial_ms);
    registry.gauge("runner.parallel_ms").set(parallel_ms);
    registry.gauge("runner.speedup").set(speedup);
    registry.gauge("runner.jobs").set(parallel_jobs);
    registry.gauge("runner.hardware_concurrency").set(hw);

    report.setResult("campaign_modules",
                     Json(static_cast<std::uint64_t>(specs.size())));
    report.setResult("campaign_failures",
                     Json(serial.failedJobs + parallel.failedJobs));
    report.setResult("hardware_concurrency", Json(hw));
    report.setResult("runner_serial_jobs", Json(1));
    report.setResult("runner_parallel_jobs", Json(parallel_jobs));
    report.setResult("runner_jobs", Json(parallel_jobs));
    report.setResult("runner_serial_ms", Json(serial_ms));
    report.setResult("runner_parallel_ms", Json(parallel_ms));
    report.setResult("runner_speedup", Json(speedup));
    report.setResult("runner_verdicts_identical", Json(identical));
    report.setTiming(serial_ms + parallel_ms, 0);
    report.attachMetrics(registry);
    const bool wrote = report.writeFile("BENCH_perf.json");

    std::printf("\nrunner campaign: %zu modules, serial %.0f ms, "
                "%d jobs (hw %d) %.0f ms, speedup %.2fx, verdicts %s\n",
                specs.size(), serial_ms, parallel_jobs, hw, parallel_ms,
                speedup, identical ? "bit-identical" : "DIVERGENT");

    benchmark::Shutdown();
    return (wrote && identical && serial.allOk() && parallel.allOk())
        ? 0
        : 1;
}
