/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): command throughput of
 * the substrate. These gate the wall-clock cost of the experiment
 * harnesses (a full Fig. 9 sweep issues hundreds of millions of ACTs).
 *
 * Results also land in BENCH_perf.json (via the metrics registry) so
 * runs can be diffed mechanically.
 */

#include <benchmark/benchmark.h>

#include "attack/sweep.hh"
#include "core/row_scout.hh"
#include "dram/module.hh"
#include "obs/report.hh"
#include "softmc/host.hh"

namespace
{

using namespace utrr;

ModuleSpec
benchSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    return spec;
}

void
BM_HammerNoTrr(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    for (auto _ : state)
        host.hammer(0, 5'000, 1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HammerNoTrr);

void
BM_HammerWithVendorATrr(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kATrr1), 1);
    SoftMcHost host(module);
    for (auto _ : state)
        host.hammer(0, 5'000, 1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HammerWithVendorATrr);

void
BM_RefCommand(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kATrr1), 1);
    SoftMcHost host(module);
    // Touch some rows so the refresh sweep has work to do.
    for (Row r = 0; r < 512; ++r)
        host.writeRow(0, r * 64, DataPattern::allOnes());
    for (auto _ : state)
        host.ref();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefCommand);

void
BM_WriteReadRow(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    Row row = 0;
    for (auto _ : state) {
        host.writeRow(0, row, DataPattern::allOnes());
        benchmark::DoNotOptimize(host.readRow(0, row));
        row = (row + 1) % 4'096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteReadRow);

void
BM_RetentionScan(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 2);
    SoftMcHost host(module);
    RowScoutConfig cfg;
    cfg.rowEnd = static_cast<Row>(state.range(0));
    cfg.consistencyChecks = 10;
    RowScout scout(host,
                   DiscoveredMapping::identity(
                       module.spec().rowsPerBank),
                   cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(scout.scanFailingRows(msToNs(500)));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RetentionScan)->Arg(1'024)->Arg(8'192);

void
BM_AttackPosition(benchmark::State &state)
{
    const ModuleSpec spec = *findModuleSpec("A5");
    DramModule module(spec, 3);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    const CustomPatternParams params = defaultCustomParams(spec);
    AttackEvaluator evaluator(host);
    Row anchor = 1'000;
    for (auto _ : state) {
        auto pattern =
            makeCustomPattern(params, host, mapping, 0, anchor);
        benchmark::DoNotOptimize(evaluator.run(
            *pattern, {{0, mapping.toLogical(anchor)}}, 512));
        anchor += 64;
    }
    state.SetItemsProcessed(state.iterations() * 512); // REF slots
}
BENCHMARK(BM_AttackPosition);

/**
 * Console reporter that additionally captures every run into a metrics
 * registry: "<benchmark>.real_ns" / ".items_per_second" gauges and
 * "<benchmark>.iterations" counters.
 */
class RegistryReporter : public benchmark::ConsoleReporter
{
  public:
    explicit RegistryReporter(MetricsRegistry &registry)
        : registry(registry)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            const std::string name = run.benchmark_name();
            registry.gauge(name + ".real_ns")
                .set(run.GetAdjustedRealTime());
            registry.counter(name + ".iterations")
                .inc(static_cast<std::uint64_t>(run.iterations));
            const auto items = run.counters.find("items_per_second");
            if (items != run.counters.end()) {
                registry.gauge(name + ".items_per_second")
                    .set(items->second);
            }
        }
    }

  private:
    MetricsRegistry &registry;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    MetricsRegistry registry;
    RegistryReporter reporter(registry);
    benchmark::RunSpecifiedBenchmarks(&reporter);

    ExperimentReport report("bench_perf");
    report.attachMetrics(registry);
    const bool wrote = report.writeFile("BENCH_perf.json");

    benchmark::Shutdown();
    return wrote ? 0 : 1;
}
