/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): command throughput of
 * the substrate. These gate the wall-clock cost of the experiment
 * harnesses (a full Fig. 9 sweep issues hundreds of millions of ACTs).
 *
 * On top of the microbenches, a campaign section measures the parallel
 * runner: the identification battery over a vendor-balanced module
 * subset at every point of a jobs {1, 2, 4, 8} scaling matrix,
 * recording one honest round per point (jobs, wall ms, speedup vs the
 * serial point) and asserting every point's verdicts are bit-identical
 * to jobs=1, the runner's determinism contract. The recorded
 * hardware_concurrency tells a reader how many of those points could
 * actually run in parallel on the measuring host. A journal-overhead
 * pair then reruns the battery with the fsynced write-ahead journal
 * armed (DESIGN.md §14) and records the durability tax as
 * journal_overhead_ratio — the acceptance bar is < 1.05x.
 *
 * The profiler-overhead pairs (BM_HammerLoop vs BM_HammerLoopProfiled,
 * BM_RetentionScan vs BM_RetentionScanProfiled, and the
 * BM_ProfSpanDisabled/Enabled span costs) pin the observability tax:
 * the disabled profiler must stay within noise of no profiler at all.
 *
 * Results land in BENCH_perf.json with populated rounds (one per
 * benchmark run plus one per scaling point), results (campaign +
 * speedup summary) and timing (campaign wall time), so runs can be
 * diffed mechanically.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "attack/sweep.hh"
#include "common/logging.hh"
#include "core/row_scout.hh"
#include "core/sim_backend.hh"
#include "dram/module.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "runner/journal.hh"
#include "runner/reveng_job.hh"
#include "softmc/compiler.hh"
#include "softmc/host.hh"

namespace
{

using namespace utrr;

ModuleSpec
benchSpec(TrrVersion trr)
{
    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = trr;
    return spec;
}

void
BM_HammerLoop(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    for (auto _ : state)
        host.hammer(0, 5'000, 1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HammerLoop);

void
BM_ProgramCompile(benchmark::State &state)
{
    // Lowering cost of a representative reverse-engineering program
    // (hammer loops, whole-row accesses, REF runs) through
    // ProgramCompiler; items = source instructions lowered.
    Program program;
    for (int round = 0; round < 64; ++round) {
        program.writeRow(0, 500 + round, DataPattern::allOnes());
        program.hammer(0, 499, 1'000);
        program.hammer(0, 501, 1'000);
        program.ref(16);
        program.readRow(0, 500 + round);
    }
    for (auto _ : state) {
        CompiledProgram compiled = ProgramCompiler::compile(program);
        benchmark::DoNotOptimize(compiled);
    }
    state.SetItemsProcessed(state.iterations() * program.size());
}
BENCHMARK(BM_ProgramCompile);

void
BM_CompiledHammer(benchmark::State &state)
{
    // Steady-state throughput of the compiled tier on a pre-lowered
    // hammer program: one kHammer batch op per 1000-ACT burst, applied
    // through DramBank::applyActivationBurst. Compile cost excluded —
    // the delta against BM_HammerLoopInterpreted is the fusion win.
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    Program program;
    program.hammer(0, 5'000, 1'000);
    const CompiledProgram compiled = ProgramCompiler::compile(program);
    for (auto _ : state)
        benchmark::DoNotOptimize(host.executeCompiled(compiled));
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_CompiledHammer);

void
BM_HammerLoopInterpreted(benchmark::State &state)
{
    // BM_HammerLoop with the fused batch path disabled: one ACT+PRE
    // dispatch per cycle, the pre-§17 reference behaviour.
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    host.setExecMode(ExecMode::kInterpreted);
    for (auto _ : state)
        host.hammer(0, 5'000, 1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HammerLoopInterpreted);

void
BM_HammerLoopProfiled(benchmark::State &state)
{
    // Same loop with the span profiler armed: the delta against
    // BM_HammerLoop is the per-span bookkeeping cost on the hottest
    // instrumented path (softmc.hammer opens one span per call).
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    Profiler::instance().setEnabled(true);
    for (auto _ : state)
        host.hammer(0, 5'000, 1'000);
    Profiler::instance().setEnabled(false);
    Profiler::instance().reset();
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HammerLoopProfiled);

void
BM_HammerWithVendorATrr(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kATrr1), 1);
    SoftMcHost host(module);
    for (auto _ : state)
        host.hammer(0, 5'000, 1'000);
    state.SetItemsProcessed(state.iterations() * 1'000);
}
BENCHMARK(BM_HammerWithVendorATrr);

void
BM_RefCommand(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kATrr1), 1);
    SoftMcHost host(module);
    // Touch some rows so the refresh sweep has work to do.
    for (Row r = 0; r < 512; ++r)
        host.writeRow(0, r * 64, DataPattern::allOnes());
    for (auto _ : state)
        host.ref();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RefCommand);

void
BM_WriteReadRow(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 1);
    SoftMcHost host(module);
    Row row = 0;
    for (auto _ : state) {
        host.writeRow(0, row, DataPattern::allOnes());
        benchmark::DoNotOptimize(host.readRow(0, row));
        row = (row + 1) % 4'096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteReadRow);

void
BM_RetentionScan(benchmark::State &state)
{
    DramModule module(benchSpec(TrrVersion::kNone), 2);
    SoftMcHost host(module);
    RowScoutConfig cfg;
    cfg.rowEnd = static_cast<Row>(state.range(0));
    cfg.consistencyChecks = 10;
    RowScout scout(host,
                   DiscoveredMapping::identity(
                       module.spec().rowsPerBank),
                   cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(scout.scanFailingRows(msToNs(500)));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RetentionScan)->Arg(1'024)->Arg(8'192);

void
BM_RetentionScanInterpreted(benchmark::State &state)
{
    // Interpreted-tier pair of BM_RetentionScan. The scan path is
    // wait/write/read dominated (no hammer bursts), so the two tiers
    // should stay within noise of each other — a growing gap here
    // means non-hammer work leaked onto the batch path.
    DramModule module(benchSpec(TrrVersion::kNone), 2);
    SoftMcHost host(module);
    host.setExecMode(ExecMode::kInterpreted);
    RowScoutConfig cfg;
    cfg.rowEnd = static_cast<Row>(state.range(0));
    cfg.consistencyChecks = 10;
    RowScout scout(host,
                   DiscoveredMapping::identity(
                       module.spec().rowsPerBank),
                   cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(scout.scanFailingRows(msToNs(500)));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RetentionScanInterpreted)->Arg(1'024);

void
BM_RetentionScanProfiled(benchmark::State &state)
{
    // BM_RetentionScan with the profiler armed (row_scout.scan +
    // softmc.wait spans live on this path).
    DramModule module(benchSpec(TrrVersion::kNone), 2);
    SoftMcHost host(module);
    RowScoutConfig cfg;
    cfg.rowEnd = static_cast<Row>(state.range(0));
    cfg.consistencyChecks = 10;
    RowScout scout(host,
                   DiscoveredMapping::identity(
                       module.spec().rowsPerBank),
                   cfg);
    Profiler::instance().setEnabled(true);
    for (auto _ : state)
        benchmark::DoNotOptimize(scout.scanFailingRows(msToNs(500)));
    Profiler::instance().setEnabled(false);
    Profiler::instance().reset();
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RetentionScanProfiled)->Arg(1'024);

void
BM_ProfSpanDisabled(benchmark::State &state)
{
    // The raw cost of an instrumented scope while profiling is off:
    // one relaxed atomic load and a not-taken branch. This is the
    // overhead every instrumented call site pays in production runs.
    for (auto _ : state) {
        UTRR_PROF_SCOPE("bench.span_disabled");
        benchmark::DoNotOptimize(&state);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfSpanDisabled);

void
BM_ProfSpanEnabled(benchmark::State &state)
{
    // Full open/close cost of a span while profiling is on (clock
    // reads + thread-local tree bookkeeping).
    Profiler::instance().setEnabled(true);
    for (auto _ : state) {
        UTRR_PROF_SCOPE("bench.span_enabled");
        benchmark::DoNotOptimize(&state);
    }
    Profiler::instance().setEnabled(false);
    Profiler::instance().reset();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfSpanEnabled);

void
BM_RefreshSweep(benchmark::State &state)
{
    // Per-REF cost of the regular refresh sweep with a populated bank:
    // exercises the flat slot-table scan of DramBank::refreshRange and
    // the restoreCharge fast path (rows well inside their retention).
    DramModule module(benchSpec(TrrVersion::kNone), 4);
    SoftMcHost host(module);
    const Row rows = static_cast<Row>(state.range(0));
    for (Row r = 0; r < rows; ++r)
        host.writeRow(0, r, DataPattern::allOnes());
    for (auto _ : state)
        host.refBurst(256);
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RefreshSweep)->Arg(1'024)->Arg(8'192);

void
BM_ReadOpenRow(benchmark::State &state)
{
    // Pure RD cost on an open row: with copy-on-write readouts this is
    // O(1) regardless of how many overrides/flips the row carries.
    DramModule module(benchSpec(TrrVersion::kNone), 5);
    SoftMcHost host(module);
    host.writeRow(0, 100, DataPattern::checkerboard());
    host.act(0, 100);
    for (auto _ : state)
        benchmark::DoNotOptimize(host.rd(0));
    host.pre(0);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadOpenRow);

void
BM_AttackPosition(benchmark::State &state)
{
    const ModuleSpec spec = *findModuleSpec("A5");
    DramModule module(spec, 3);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    const CustomPatternParams params = defaultCustomParams(spec);
    AttackEvaluator evaluator(host);
    Row anchor = 1'000;
    for (auto _ : state) {
        auto pattern =
            makeCustomPattern(params, host, mapping, 0, anchor);
        benchmark::DoNotOptimize(evaluator.run(
            *pattern, {{0, mapping.toLogical(anchor)}}, 512));
        anchor += 64;
    }
    state.SetItemsProcessed(state.iterations() * 512); // REF slots
}
BENCHMARK(BM_AttackPosition);

void
BM_AttackPositionInterpreted(benchmark::State &state)
{
    // Interpreted-tier pair of BM_AttackPosition: the evaluator's
    // hammer rounds fall back to per-ACT dispatch. The ratio against
    // BM_AttackPosition is the compiled tier's end-to-end win on the
    // Fig. 9 inner loop (acceptance bar: >= 3x).
    const ModuleSpec spec = *findModuleSpec("A5");
    DramModule module(spec, 3);
    SoftMcHost host(module);
    host.setExecMode(ExecMode::kInterpreted);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);
    const CustomPatternParams params = defaultCustomParams(spec);
    AttackEvaluator evaluator(host);
    Row anchor = 1'000;
    for (auto _ : state) {
        auto pattern =
            makeCustomPattern(params, host, mapping, 0, anchor);
        benchmark::DoNotOptimize(evaluator.run(
            *pattern, {{0, mapping.toLogical(anchor)}}, 512));
        anchor += 64;
    }
    state.SetItemsProcessed(state.iterations() * 512); // REF slots
}
BENCHMARK(BM_AttackPositionInterpreted);

void
BM_SnapshotFork(benchmark::State &state)
{
    // Capture + fork of a heavily written device. COW row sharing makes
    // this O(slot-table), not O(written data): the fork shares every
    // row container with the parent and copies only the bank slot
    // tables, refresh/TRR position and host clock (DESIGN.md §16).
    SimBackend sim(benchSpec(TrrVersion::kATrr1), 6);
    for (Row r = 0; r < 8'192; ++r)
        sim.host().writeRow(0, r, DataPattern::checkerboard());
    const DeviceSnapshot snap = sim.captureDevice();
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.fork(snap));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotFork);

void
BM_ProfileReuse(benchmark::State &state)
{
    // The profile-cache hit path: one RowScout profile up front, then
    // every "experiment" rewinds to the post-profile snapshot instead
    // of re-scanning. Compare against BM_RetentionScan/1024 — the
    // miss path this restore replaces.
    SimBackend sim(benchSpec(TrrVersion::kNone), 2);
    RowScoutConfig cfg;
    cfg.rowEnd = 1'024;
    cfg.consistencyChecks = 10;
    RowScout scout(sim.host(),
                   DiscoveredMapping::identity(
                       sim.module().spec().rowsPerBank),
                   cfg);
    benchmark::DoNotOptimize(scout.scanFailingRows(msToNs(500)));
    const std::uint64_t token = sim.snapshot();
    Program probe;
    probe.hammer(0, 500, 256);
    probe.ref(4);
    probe.readRow(0, 499);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.execute(probe));
        sim.restore(token);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileReuse);

/**
 * Console reporter that additionally captures every run into a metrics
 * registry ("<benchmark>.real_ns" / ".items_per_second" gauges and
 * "<benchmark>.iterations" counters) and into per-benchmark report
 * rounds, so the JSON artifact carries the full per-run timing.
 */
class RegistryReporter : public benchmark::ConsoleReporter
{
  public:
    RegistryReporter(MetricsRegistry &registry, ExperimentReport &report)
        : registry(registry), report(report)
    {
    }

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        ConsoleReporter::ReportRuns(runs);
        for (const Run &run : runs) {
            if (run.error_occurred)
                continue;
            const std::string name = run.benchmark_name();
            const double real_ns = run.GetAdjustedRealTime();
            registry.gauge(name + ".real_ns").set(real_ns);
            registry.counter(name + ".iterations")
                .inc(static_cast<std::uint64_t>(run.iterations));
            ++benchmarks;

            Json round = Json::object();
            round["benchmark"] = Json(name);
            round["real_ns"] = Json(real_ns);
            round["iterations"] =
                Json(static_cast<std::int64_t>(run.iterations));
            const auto items = run.counters.find("items_per_second");
            if (items != run.counters.end()) {
                registry.gauge(name + ".items_per_second")
                    .set(items->second);
                round["items_per_second"] = Json(double(items->second));
            }
            report.addRound(std::move(round));
        }
    }

    int benchmarkCount() const { return benchmarks; }

  private:
    MetricsRegistry &registry;
    ExperimentReport &report;
    int benchmarks = 0;
};

/**
 * Vendor-balanced module subset for the campaign speedup measurement:
 * big enough to keep every worker busy, small enough that the bench
 * stays minutes, not hours, on one core.
 */
std::vector<ModuleSpec>
campaignSpecs()
{
    std::vector<ModuleSpec> specs;
    for (const ModuleSpec &spec : allModuleSpecs()) {
        // A0, A3, ..., C12: every third module of each vendor.
        const int idx = spec.name[1] - '0';
        if ((spec.name.size() == 2 && idx % 3 == 0) ||
            spec.name == "A12" || spec.name == "B12" ||
            spec.name == "C12")
            specs.push_back(spec);
    }
    return specs;
}

/**
 * Per-record durability tax of the write-ahead journal: one
 * checksummed JSONL append + fsync with a representative job payload
 * (verdict + metrics snapshot). This is the only per-job cost
 * journaling adds, so record_cost_us x jobs bounds the campaign-level
 * overhead independently of host noise.
 */
void
BM_JournalAppend(benchmark::State &state)
{
    const char *path = "bench_journal_append.jsonl";
    CampaignConfig config;
    config.seed = 1;
    config.contentTag = "bench:perf:v1";
    const std::vector<ModuleSpec> specs = campaignSpecs();
    const CampaignKey key = CampaignKey::compute(config, specs);

    ModuleResult result;
    result.module = specs.front().name;
    result.ok = true;
    result.completed = true;
    result.attempts = 1;
    Json verdict = Json::object();
    verdict["identified"] = Json(true);
    verdict["version"] = Json(std::string("counter_v1"));
    verdict["score"] = Json(0.97);
    result.verdict = std::move(verdict);
    for (int i = 0; i < 8; ++i)
        result.metrics.counter(logFmt("bench.metric", i))
            .inc(static_cast<std::uint64_t>(i) * 17 + 1);
    for (int i = 0; i < 64; ++i)
        result.metrics.histogram("bench.lat").add(i * 3);

    JournalWriter writer;
    if (!writer.open(path, key, config, specs.size(),
                     /*append_existing=*/false)) {
        state.SkipWithError("cannot open bench journal");
        return;
    }
    std::uint64_t job = 0;
    for (auto _ : state) {
        result.index = job % specs.size();
        writer.append(key.jobKey(specs[result.index], result.index),
                      result);
        ++job;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    std::remove(path);
}
BENCHMARK(BM_JournalAppend);

/**
 * Wall milliseconds of one battery campaign at the given job count.
 * A non-empty @p journal_path arms the fsynced write-ahead journal so
 * the durability tax can be measured against the plain run.
 */
double
campaignWallMs(const std::vector<ModuleSpec> &specs, int jobs,
               CampaignResult &result_out,
               const std::string &journal_path = std::string())
{
    CampaignConfig config;
    config.jobs = jobs;
    config.seed = 1;
    if (!journal_path.empty()) {
        config.journalPath = journal_path;
        config.journalFsync = true;
        config.contentTag = "bench:perf:v1";
    }
    CampaignRunner runner(config);
    const auto begin = std::chrono::steady_clock::now();
    result_out =
        runner.run(specs, makeIdentifyJob(IdentifyJobConfig::battery()));
    const auto delta = std::chrono::steady_clock::now() - begin;
    return std::chrono::duration<double, std::milli>(delta).count();
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;

    MetricsRegistry registry;
    ExperimentReport report("bench_perf");
    RegistryReporter reporter(registry, report);
    benchmark::RunSpecifiedBenchmarks(&reporter);

    report.setResult("benchmarks", Json(reporter.benchmarkCount()));

    // CI perf-guard mode: microbenches only, no campaign measurement
    // (scripts/bench_check.py compares the per-benchmark rounds).
    const char *skip_env = std::getenv("UTRR_BENCH_SKIP_CAMPAIGN");
    if (skip_env != nullptr && skip_env[0] != '\0' &&
        skip_env[0] != '0') {
        report.attachMetrics(registry);
        const bool wrote = report.writeFile("BENCH_perf.json");
        benchmark::Shutdown();
        return wrote ? 0 : 1;
    }

    // Campaign thread-scaling matrix: the identification battery at
    // jobs {1, 2, 4, 8}. Every point is measured for real — no point is
    // skipped or synthesised on small machines — and every point's
    // verdict dump must be byte-identical to the serial one (the
    // runner's determinism contract). The recorded
    // hardware_concurrency is the honesty marker: on an H-core host,
    // points with jobs > H oversubscribe and their speedup says so.
    // UTRR_BENCH_JOBS adds one extra matrix point (e.g. a 32-core box
    // probing jobs=32).
    const std::vector<ModuleSpec> specs = campaignSpecs();
    const int hw = CampaignRunner::hardwareConcurrency();
    std::vector<int> matrix = {1, 2, 4, 8};
    if (const char *env = std::getenv("UTRR_BENCH_JOBS")) {
        const int v = std::atoi(env);
        if (v > 0 && std::find(matrix.begin(), matrix.end(), v) ==
                         matrix.end())
            matrix.push_back(v);
    }

    double serial_ms = 0.0;
    double best_ms = 0.0;
    int best_jobs = 1;
    std::string serial_verdicts;
    bool identical = true;
    bool all_ok = true;
    double total_ms = 0.0;
    std::uint64_t failures = 0;
    std::printf("\nrunner scaling matrix: %zu modules, hw %d\n",
                specs.size(), hw);
    for (const int jobs : matrix) {
        CampaignResult result;
        const double wall_ms = campaignWallMs(specs, jobs, result);
        total_ms += wall_ms;
        failures += result.failedJobs;
        all_ok = all_ok && result.allOk();
        if (jobs == 1) {
            serial_ms = wall_ms;
            best_ms = wall_ms;
            serial_verdicts = result.verdicts().dump();
        }
        const bool point_identical =
            result.verdicts().dump() == serial_verdicts;
        identical = identical && point_identical;
        const double speedup =
            wall_ms > 0.0 ? serial_ms / wall_ms : 0.0;
        if (wall_ms < best_ms) {
            best_ms = wall_ms;
            best_jobs = jobs;
        }

        Json round = Json::object();
        round["scaling_jobs"] = Json(jobs);
        round["wall_ms"] = Json(wall_ms);
        round["speedup"] = Json(speedup);
        round["verdicts_identical"] = Json(point_identical);
        report.addRound(std::move(round));
        registry.gauge(logFmt("runner.scaling.jobs", jobs, ".wall_ms"))
            .set(wall_ms);
        registry.gauge(logFmt("runner.scaling.jobs", jobs, ".speedup"))
            .set(speedup);
        std::printf("  jobs %2d: %8.0f ms, speedup %.2fx, verdicts %s\n",
                    jobs, wall_ms, speedup,
                    point_identical ? "bit-identical" : "DIVERGENT");
    }

    // Journal-overhead pairs (DESIGN.md §14): the same battery at the
    // fastest job count, without and with the fsynced write-ahead
    // journal, interleaved plain/journaled/plain/journaled and scored
    // on the minimum of each side — wall-clock noise on a shared host
    // easily exceeds the tax being measured (one small record + fsync
    // per completed job), and the min of interleaved runs cancels
    // drift that would swamp a single back-to-back pair.
    // BM_JournalAppend above pins the per-record cost directly.
    const char *journal_path = "bench_journal.jsonl";
    double plain_ms = 0.0;
    double journaled_ms = 0.0;
    bool journal_identical = true;
    for (int rep = 0; rep < 2; ++rep) {
        CampaignResult plain_result;
        const double plain =
            campaignWallMs(specs, best_jobs, plain_result);
        std::remove(journal_path);
        CampaignResult journaled_result;
        const double journaled = campaignWallMs(
            specs, best_jobs, journaled_result, journal_path);
        std::remove(journal_path);
        plain_ms = rep == 0 ? plain : std::min(plain_ms, plain);
        journaled_ms =
            rep == 0 ? journaled : std::min(journaled_ms, journaled);
        journal_identical = journal_identical &&
            journaled_result.verdicts().dump() ==
                plain_result.verdicts().dump();
        all_ok = all_ok && plain_result.allOk() &&
            journaled_result.allOk();
        failures +=
            plain_result.failedJobs + journaled_result.failedJobs;
        total_ms += plain + journaled;
    }
    const double journal_overhead =
        plain_ms > 0.0 ? journaled_ms / plain_ms : 0.0;
    identical = identical && journal_identical;

    Json journal_round = Json::object();
    journal_round["journal_plain_ms"] = Json(plain_ms);
    journal_round["journal_journaled_ms"] = Json(journaled_ms);
    journal_round["journal_overhead"] = Json(journal_overhead);
    journal_round["verdicts_identical"] = Json(journal_identical);
    report.addRound(std::move(journal_round));
    registry.gauge("runner.journal.plain_ms").set(plain_ms);
    registry.gauge("runner.journal.journaled_ms").set(journaled_ms);
    registry.gauge("runner.journal.overhead").set(journal_overhead);
    std::printf("journal overhead: min %.0f ms plain, min %.0f ms "
                "journaled (fsync per record), %.3fx at jobs %d, "
                "verdicts %s\n",
                plain_ms, journaled_ms, journal_overhead, best_jobs,
                journal_identical ? "bit-identical" : "DIVERGENT");

    const double best_speedup =
        best_ms > 0.0 ? serial_ms / best_ms : 0.0;
    registry.gauge("runner.serial_ms").set(serial_ms);
    registry.gauge("runner.best_ms").set(best_ms);
    registry.gauge("runner.best_jobs").set(best_jobs);
    registry.gauge("runner.speedup").set(best_speedup);
    registry.gauge("runner.hardware_concurrency").set(hw);

    report.setResult("campaign_modules",
                     Json(static_cast<std::uint64_t>(specs.size())));
    report.setResult("campaign_failures", Json(failures));
    report.setResult("hardware_concurrency", Json(hw));
    // On a single-core host every matrix point runs serially, so the
    // speedup column is meaningless (~1.0x by construction). Flag it so
    // scripts/bench_check.py reports the matrix as unmeasured instead
    // of comparing noise.
    report.setResult("parallel_unmeasured", Json(hw <= 1));
    report.setResult("runner_serial_ms", Json(serial_ms));
    report.setResult("runner_best_ms", Json(best_ms));
    report.setResult("runner_best_jobs", Json(best_jobs));
    report.setResult("runner_speedup", Json(best_speedup));
    report.setResult("runner_verdicts_identical", Json(identical));
    report.setResult("journal_plain_ms", Json(plain_ms));
    report.setResult("journal_journaled_ms", Json(journaled_ms));
    report.setResult("journal_overhead_ratio", Json(journal_overhead));
    report.setTiming(total_ms, 0);
    report.attachMetrics(registry);
    const bool wrote = report.writeFile("BENCH_perf.json");

    std::printf("runner campaign: best %.0f ms at jobs %d, "
                "speedup %.2fx over serial, verdicts %s\n",
                best_ms, best_jobs, best_speedup,
                identical ? "bit-identical" : "DIVERGENT");

    benchmark::Shutdown();
    return (wrote && identical && all_ok) ? 0 : 1;
}
