/**
 * @file
 * Reproduces the §7.4 ECC-bypass analysis: feed the per-8-byte-word
 * flip patterns produced by the custom attacks through SECDED
 * Hamming(72,64), a Chipkill-style symbol code, and Reed-Solomon codes
 * of increasing parity, classifying each word as corrected, detected
 * or silently corrupted.
 */

#include <iostream>

#include "attack/sweep.hh"
#include "bench_common.hh"
#include "ecc/ecc_analysis.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    // Collect flip patterns from one representative module per vendor
    // (or the selection).
    std::vector<std::string> modules = {"A5", "B13", "C12"};
    if (!args.module.empty())
        modules = {args.module};

    Histogram word_flips;
    for (const std::string &name : modules) {
        const ModuleSpec spec = *findModuleSpec(name);
        DramModule module(spec, args.seed);
        SoftMcHost host(module);
        const DiscoveredMapping mapping(spec.scramble,
                                        spec.rowsPerBank);
        SweepConfig cfg;
        cfg.positions = args.positionsOrDefault(24);
        const SweepResult sweep = sweepCustomPattern(
            host, mapping, defaultCustomParams(spec), cfg);
        for (const auto &[flips, count] : sweep.wordFlips.bins())
            word_flips.add(flips, count);
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";

    TextTable hist_table("Observed words by flip count");
    hist_table.header({"flips/word", "words"});
    for (const auto &[flips, count] : word_flips.bins())
        hist_table.addRow(flips, count);
    hist_table.print(std::cout);

    const std::vector<int> parities = {2, 3, 4, 7, 14};
    const EccStudy study = studyWordFlipHistogram(word_flips, parities);

    TextTable table("ECC outcomes per scheme (paper §7.4)");
    table.header({"Scheme", "corrected", "detected", "miscorrected",
                  "undetected", "silent corruption"});
    auto add = [&table](const std::string &name, const EccTally &t) {
        table.addRow(name, t.of(EccOutcome::kCorrected),
                     t.of(EccOutcome::kDetected),
                     t.of(EccOutcome::kMiscorrected),
                     t.of(EccOutcome::kUndetected),
                     t.silentCorruption());
    };
    add("SECDED(72,64)", study.secded);
    add("on-die SEC(71,64)", study.onDieSec);
    add("Chipkill (RS 11,8 t=1)", study.chipkill);
    for (int parity : parities)
        add(logFmt("RS(", 8 + parity, ",8) t=", parity / 2),
            study.reedSolomon.at(parity));
    table.print(std::cout);

    std::cout
        << "\nPaper conclusion: SECDED and Chipkill cannot protect\n"
           "against the custom patterns (words with >= 3 flips cause\n"
           "silent corruption); detecting the worst observed words\n"
           "takes a Reed-Solomon code with ~7 parity-check symbols\n"
           "(correcting them takes 14) — a large overhead.\n";
    return 0;
}
