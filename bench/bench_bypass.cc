/**
 * @file
 * Per-TRR bypass table: the synthesizer pitted against every module.
 *
 * Extends the paper's TRRespass comparison (§1, §8): the uniform
 * fuzzer beats only a fraction of the modules, the hand-crafted §7.1
 * patterns beat most, and the non-uniform synthesizer (attack/synth)
 * closes the loop automatically. The deliverable is the bypass table —
 * for every TRR version, which pattern class beats the mechanism and
 * at what per-aggressor hammer budget — written to BENCH_bypass.json
 * as the bypass_table section of an ExperimentReport.
 *
 * Default run: all 45 modules (minutes on a few cores; --quick drops
 * to one module per Table-1 group, --module/--vendor narrow further).
 * The report's deterministic projection is a pure function of (seed,
 * silicon seed, config) — byte-identical for any core count.
 */

#include <iostream>

#include "attack/synth.hh"
#include "bench_common.hh"
#include "obs/report.hh"
#include "trr/trr.hh"

using namespace utrr;
using namespace utrr::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    std::vector<ModuleSpec> specs;
    if (args.quick && args.module.empty()) {
        // One representative per Table-1 group (bench_trrespass's
        // selection), filtered by --vendor if given.
        for (const char *name : {"A0", "A5", "A13", "B0", "B1", "B7",
                                 "B9", "B13", "C0", "C7", "C9", "C12"}) {
            const ModuleSpec spec = *findModuleSpec(name);
            if (args.vendor == 0 || spec.vendor == args.vendor)
                specs.push_back(spec);
        }
    } else {
        specs = args.selectedModules();
    }

    SynthCampaignConfig cfg;
    cfg.jobs = 0; // all cores; the projection is core-count-invariant
    cfg.seed = 1;
    cfg.synth.moduleSeed = args.seed;
    if (args.quick)
        cfg.synth.attempts = 32;
    if (args.positions > 0)
        cfg.synth.positions = args.positions;

    std::cerr << "synthesizing for " << specs.size()
              << " module(s)...\n";
    const CampaignResult result = runSynthCampaign(specs, cfg);
    const Json table = bypassTable(result, specs);

    TextTable text("Per-TRR bypass table (synthesized patterns)");
    text.header({"TRR", "Beaten", "Pattern classes",
                 "Hammers/aggr/period", "Example", "Flips"});
    const Json *by_trr = table.find("by_trr");
    for (std::size_t i = 0; by_trr != nullptr && i < by_trr->size();
         ++i) {
        const Json &row = by_trr->at(i);
        std::string classes;
        if (const Json *cls = row.find("pattern_classes")) {
            for (std::size_t c = 0; c < cls->size(); ++c) {
                classes += (c == 0 ? "" : ", ");
                classes += cls->at(c).asString();
            }
        }
        std::string budget = "-";
        if (const Json *lo =
                row.find("min_hammers_per_aggr_per_period")) {
            budget = std::to_string(lo->asInt()) + "-" +
                std::to_string(
                    row.find("max_hammers_per_aggr_per_period")
                        ->asInt());
        }
        const Json *example = row.find("example_module");
        const Json *flips = row.find("example_flips");
        text.addRow(row.find("trr")->asString(),
                    std::to_string(row.find("beaten")->asInt()) + "/" +
                        std::to_string(row.find("modules")->asInt()),
                    classes.empty() ? "-" : classes, budget,
                    example != nullptr ? example->asString() : "-",
                    flips != nullptr ? flips->asInt() : 0);
    }
    text.print(std::cout);

    int beaten = 0;
    for (const ModuleResult &m : result.modules) {
        const Json *flag = m.verdict.find("beaten");
        beaten += (m.completed && flag != nullptr && flag->asBool())
            ? 1 : 0;
    }
    std::cout << "\nModules beaten: " << beaten << "/" << specs.size()
              << ".  (Paper: TRRespass 13/42, U-TRR custom 45/45.)\n";

    ExperimentReport report("bench_bypass");
    fillBypassReport(report, result, specs, cfg);
    const bool wrote = report.writeFile("BENCH_bypass.json");
    std::cout << (wrote ? "wrote" : "FAILED to write")
              << " BENCH_bypass.json\n";
    return wrote ? 0 : 1;
}
