/**
 * @file
 * Characterizes Row Scout (paper §4, Fig. 6): per-module profiling
 * statistics — the retention time the search settles on, groups found
 * per layout, rows rejected by the 1000x consistency validation (VRT),
 * and the number of validations spent.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/row_scout.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    std::vector<std::string> modules = {"A5", "B8", "C9"};
    if (!args.module.empty())
        modules = {args.module};

    TextTable table("Row Scout profiling statistics (Fig. 6 flow)");
    table.header({"Module", "Layout", "Groups asked", "Groups found",
                  "T (ms)", "Validations"});

    for (const std::string &name : modules) {
        const ModuleSpec spec = *findModuleSpec(name);
        for (const char *layout : {"R", "R-R", "RR", "RRR-RRR"}) {
            DramModule module(spec, args.seed);
            SoftMcHost host(module);
            RowScoutConfig cfg;
            cfg.rowEnd = std::string(layout) == "RRR-RRR"
                ? std::min<Row>(spec.rowsPerBank, 32 * 1024)
                : 8 * 1024;
            cfg.layout = RowGroupLayout::parse(layout);
            cfg.groupCount = std::string(layout) == "RRR-RRR" ? 1 : 8;
            cfg.consistencyChecks = args.quick ? 15 : 100;
            RowScout scout(
                host,
                DiscoveredMapping(spec.scramble, spec.rowsPerBank),
                cfg);
            const auto groups = scout.scout();
            table.addRow(name, layout, cfg.groupCount,
                         static_cast<int>(groups.size()),
                         groups.empty()
                             ? std::string("-")
                             : fmtDouble(nsToMs(groups[0].retention), 0),
                         static_cast<std::uint64_t>(
                             scout.validationsRun()));
            std::cerr << "." << std::flush;
        }
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout << "\nEvery returned group shares one retention time T\n"
                 "(holds at T/2, fails at T) and passed the repeated\n"
                 "consistency validation that filters VRT rows.\n";
    return 0;
}
