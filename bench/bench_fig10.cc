/**
 * @file
 * Reproduces Fig. 10: the distribution of 8-byte datawords by the
 * number of RowHammer bit flips they contain, per module — the input
 * to the §7.4 ECC analysis. Words with >= 3 flips defeat SECDED and
 * Chipkill guarantees.
 */

#include <iostream>

#include "attack/sweep.hh"
#include "bench_common.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    TextTable table(
        "Fig. 10 — 8-byte words by bit-flip count (sampled bank "
        "sweep)");
    table.header({"Module", "words:1flip", "2", "3", "4", "5", "6",
                  "7+", "max/word"});

    std::uint64_t words_3plus_total = 0;
    for (const ModuleSpec &spec : args.selectedModules()) {
        DramModule module(spec, args.seed);
        SoftMcHost host(module);
        const DiscoveredMapping mapping(spec.scramble,
                                        spec.rowsPerBank);
        SweepConfig cfg;
        cfg.positions = args.positionsOrDefault(32);
        const SweepResult sweep = sweepCustomPattern(
            host, mapping, defaultCustomParams(spec), cfg);

        std::uint64_t bins[8] = {};
        for (const auto &[flips, count] : sweep.wordFlips.bins()) {
            if (flips >= 7)
                bins[7] += count;
            else
                bins[flips] += count;
        }
        words_3plus_total += bins[3] + bins[4] + bins[5] + bins[6] +
            bins[7];
        table.addRow(spec.name, bins[1], bins[2], bins[3], bins[4],
                     bins[5], bins[6], bins[7],
                     sweep.wordFlips.maxValue());
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout << "\nWords with >= 3 flips across the selection: "
              << words_3plus_total
              << " — these defeat SECDED (correct-1/detect-2) and "
                 "Chipkill-style symbol codes (paper §7.4).\n";
    return 0;
}
