/**
 * @file
 * Ablations of the design choices the paper discusses:
 *
 *  1. baseline comparison (§7, footnote 18): single-, double- and
 *     many-sided (TRRespass) hammering vs the U-TRR custom pattern on
 *     one representative module per vendor;
 *  2. hammering mode (§5.2): interleaved vs cascaded flip counts for
 *     equal budgets (no TRR), and their TRR-evasion behaviour;
 *  3. vendor B dummy budget (§7.2): minimum dummy activations needed
 *     before any flips appear.
 */

#include <iostream>

#include "attack/sweep.hh"
#include "bench_common.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

namespace
{

void
baselineComparison(const BenchArgs &args)
{
    TextTable table(
        "Ablation 1 — access-pattern comparison (% vulnerable rows)");
    table.header({"Module", "single-sided", "double-sided", "9-sided",
                  "19-sided", "U-TRR custom"});

    for (const std::string name : {"A5", "B8", "C9"}) {
        const ModuleSpec spec = *findModuleSpec(name);
        DramModule module(spec, args.seed);
        SoftMcHost host(module);
        const DiscoveredMapping mapping(spec.scramble,
                                        spec.rowsPerBank);
        SweepConfig cfg;
        cfg.positions = args.positionsOrDefault(8);

        std::vector<std::string> cells = {name};
        for (BaselineKind kind :
             {BaselineKind::kSingleSided, BaselineKind::kDoubleSided,
              BaselineKind::kManySided9, BaselineKind::kManySided19}) {
            const SweepResult sweep =
                sweepBaseline(host, mapping, kind, cfg);
            cells.push_back(fmtPercent(sweep.vulnerableFraction()));
        }
        const SweepResult custom = sweepCustomPattern(
            host, mapping, defaultCustomParams(spec), cfg);
        cells.push_back(fmtPercent(custom.vulnerableFraction()));
        table.row(cells);
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);
}

void
hammeringModes(const BenchArgs &args)
{
    TextTable table(
        "Ablation 2 — interleaved vs cascaded double-sided hammering "
        "(no TRR, refresh disabled)");
    table.header({"hammers/aggr", "interleaved flips",
                  "cascaded flips"});

    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    for (int hammers : {20'000, 40'000, 80'000}) {
        int flips[2] = {};
        for (int mode = 0; mode < 2; ++mode) {
            DramModule module(spec, args.seed);
            SoftMcHost host(module);
            const Row victim = 2'001;
            host.writeRow(0, victim, DataPattern::allOnes());
            host.writeRow(0, victim - 1, DataPattern::allZeros());
            host.writeRow(0, victim + 1, DataPattern::allZeros());
            const std::vector<std::pair<Bank, Row>> rows = {
                {0, victim - 1}, {0, victim + 1}};
            if (mode == 0)
                host.hammerInterleaved(rows, {hammers, hammers});
            else
                host.hammerCascaded(rows, {hammers, hammers});
            flips[mode] = host.readRow(0, victim).countFlipsVs(
                DataPattern::allOnes(), victim);
        }
        table.addRow(hammers, flips[0], flips[1]);
    }
    table.print(std::cout);
    std::cout << "(§5.2: interleaved flips more bits; cascaded evades "
                 "detection better.)\n";
}

void
dummyBudget(const BenchArgs &args)
{
    TextTable table(
        "Ablation 3 — vendor B: aggressor/dummy budget split "
        "(module B8)");
    table.header({"hammers/aggr/window", "dummy ACT share",
                  "%vulnerable", "max flips/row"});

    const ModuleSpec spec = *findModuleSpec("B8");
    DramModule module(spec, args.seed);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);

    const int window_budget =
        spec.traits().trrToRefPeriod * Timing{}.hammersPerRefi();
    for (int aggr : {80, 160, 220, 280, 290}) {
        SweepConfig cfg;
        cfg.positions = args.positionsOrDefault(8);
        cfg.aggressorHammers = aggr;
        const SweepResult sweep = sweepCustomPattern(
            host, mapping, defaultCustomParams(spec), cfg);
        const double dummy_share =
            1.0 - 2.0 * aggr / static_cast<double>(window_budget);
        table.addRow(aggr, fmtPercent(dummy_share),
                     fmtPercent(sweep.vulnerableFraction()),
                     sweep.maxRowFlips);
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout << "(§7.2: too many aggressor hammers leave too little "
                 "time to divert the sampler.)\n";
}

void
dataDependence(const BenchArgs &args)
{
    // §5.2 / §3.2: RowHammer depends on the data stored in the
    // aggressor rows — TRR-A initializes aggressors explicitly for
    // this reason.
    TextTable table(
        "Ablation 4 — aggressor data-pattern dependence (no TRR)");
    table.header({"victim data", "aggressor data", "flips"});

    ModuleSpec spec = *findModuleSpec("A5");
    spec.trr = TrrVersion::kNone;
    struct Case
    {
        const char *victim;
        const char *aggr;
        DataPattern victim_pattern;
        DataPattern aggr_pattern;
    };
    const Case cases[] = {
        {"ones", "zeros", DataPattern::allOnes(),
         DataPattern::allZeros()},
        {"ones", "ones", DataPattern::allOnes(),
         DataPattern::allOnes()},
        {"zeros", "ones", DataPattern::allZeros(),
         DataPattern::allOnes()},
        {"zeros", "zeros", DataPattern::allZeros(),
         DataPattern::allZeros()},
    };
    for (const Case &c : cases) {
        DramModule module(spec, args.seed);
        SoftMcHost host(module);
        const Row victim = 2'001;
        host.writeRow(0, victim, c.victim_pattern);
        host.writeRow(0, victim - 1, c.aggr_pattern);
        host.writeRow(0, victim + 1, c.aggr_pattern);
        host.hammerInterleaved({{0, victim - 1}, {0, victim + 1}},
                               {40'000, 40'000});
        table.addRow(c.victim, c.aggr,
                     host.readRow(0, victim)
                         .countFlipsVs(c.victim_pattern, victim));
    }
    table.print(std::cout);
    std::cout << "(Aggressors storing the inverse of the victim data "
                 "disturb it the most; same-data coupling is weaker, "
                 "and only charged cells can flip.)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);
    baselineComparison(args);
    hammeringModes(args);
    dummyBudget(args);
    dataDependence(args);
    return 0;
}
