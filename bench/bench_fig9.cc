/**
 * @file
 * Reproduces Fig. 9: the percentage of DRAM rows in a bank that
 * experience at least one RowHammer bit flip under the U-TRR custom
 * access patterns, for all 45 modules, next to the paper's values.
 */

#include <iostream>

#include "attack/sweep.hh"
#include "bench_common.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    TextTable table(
        "Fig. 9 — % of rows with at least one bit flip under the "
        "custom patterns");
    table.header({"Module", "TRR", "HC_first", "%Vulnerable",
                  "(paper)", "rows tested"});

    for (const ModuleSpec &spec : args.selectedModules()) {
        DramModule module(spec, args.seed);
        SoftMcHost host(module);
        const DiscoveredMapping mapping(spec.scramble,
                                        spec.rowsPerBank);
        SweepConfig cfg;
        cfg.positions = args.positionsOrDefault(32);
        const SweepResult sweep = sweepCustomPattern(
            host, mapping, defaultCustomParams(spec), cfg);
        table.addRow(spec.name, trrVersionName(spec.trr),
                     logFmt(static_cast<int>(spec.hcFirst / 1'000), "K"),
                     fmtPercent(sweep.vulnerableFraction()),
                     fmtDouble(spec.paperVulnerableRowsPct, 1) + "%",
                     sweep.victimRowsTested);
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout
        << "\nShape to compare with the paper: most modules of every\n"
           "vendor show bit flips; B1-4 (very high HC_first) and the\n"
           "paired C_TRR1 modules (C0-8) are markedly less vulnerable.\n";
    return 0;
}
