/**
 * @file
 * Reproduces Table 1: per-module TRR observations and attack results
 * for all 45 DDR4 modules.
 *
 * For every module, the harness reverse-engineers (black-box) the
 * TRR-to-REF ratio, the number of refreshed neighbours and the
 * detection strategy, then runs the U-TRR custom access pattern over a
 * sampled bank sweep to measure the fraction of vulnerable rows and
 * the maximum bit flips per row per hammer. Paper-reported values are
 * printed alongside for comparison.
 *
 * Default run samples positions per bank; use --full for a deep sweep
 * and --quick for a CI-sized pass. --module A5 restricts to one row.
 */

#include <iostream>

#include "attack/sweep.hh"
#include "bench_common.hh"
#include "core/reveng.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

namespace
{

struct Table1Row
{
    ModuleSpec spec;
    int period = 0;
    int neighbours = 0;
    DetectionType detection = DetectionType::kUnknown;
    SweepResult sweep;
};

Table1Row
analyzeModule(const ModuleSpec &spec, const BenchArgs &args)
{
    Table1Row row;
    row.spec = spec;

    DramModule module(spec, args.seed);
    SoftMcHost host(module);
    const DiscoveredMapping mapping(spec.scramble, spec.rowsPerBank);

    TrrRevengConfig reveng_cfg;
    reveng_cfg.scoutRowEnd = 6 * 1024;
    reveng_cfg.consistencyChecks = args.quick ? 15 : 40;
    reveng_cfg.periodIterations = args.quick ? 64 : 128;
    TrrReveng reveng(host, mapping, reveng_cfg);

    row.period = reveng.discoverTrrRefPeriod();
    row.neighbours = reveng.discoverNeighborsRefreshed();
    row.detection = reveng.discoverDetectionType();

    SweepConfig sweep_cfg;
    sweep_cfg.positions = args.positionsOrDefault(24);
    row.sweep = sweepCustomPattern(host, mapping,
                                   defaultCustomParams(spec), sweep_cfg);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    TextTable table(
        "Table 1 — TRR observations and attack results (measured vs "
        "paper)");
    table.header({"Module", "Date", "Gbit", "Banks", "Pins", "Version",
                  "TRR/REF", "(paper)", "Neigh", "(paper)", "Detection",
                  "%Vuln", "(paper)", "MaxFlips/row/hammer",
                  "(paper)"});

    for (const ModuleSpec &spec : args.selectedModules()) {
        const Table1Row row = analyzeModule(spec, args);
        const TrrTraits truth = spec.traits();
        table.addRow(
            spec.name, spec.date, spec.chipDensityGbit, spec.banks,
            logFmt("x", spec.pins),
            trrVersionName(spec.trr),
            logFmt("1/", row.period), logFmt("1/", truth.trrToRefPeriod),
            row.neighbours, truth.neighborsRefreshed,
            detectionTypeName(row.detection),
            fmtPercent(row.sweep.vulnerableFraction()),
            fmtDouble(spec.paperVulnerableRowsPct, 1) + "%",
            fmtDouble(row.sweep.maxFlipsPerRowPerHammer()),
            fmtDouble(spec.paperMaxFlipsPerHammer));
        std::cerr << "." << std::flush; // progress
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout
        << "\nNotes: 'Neigh' for paired-row modules (C0-8) counts the\n"
           "pair row only (Obs. C3); the paper's Table 1 reports 2.\n"
           "%Vuln is measured over a sampled sweep (--full widens it).\n";
    return 0;
}
