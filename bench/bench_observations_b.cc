/**
 * @file
 * Reproduces the §6.2 vendor-B experiments (Observations B1-B5) on the
 * three B_TRR versions, black-box.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/reveng.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

namespace
{

void
analyze(const std::string &name, const BenchArgs &args, TextTable &table)
{
    const ModuleSpec spec = *findModuleSpec(name);
    DramModule module(spec, args.seed);
    SoftMcHost host(module);
    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 8 * 1024;
    cfg.consistencyChecks = args.quick ? 15 : 40;
    TrrReveng reveng(host,
                     DiscoveredMapping(spec.scramble, spec.rowsPerBank),
                     cfg);

    const int period = reveng.discoverTrrRefPeriod();
    const int neighbours = reveng.discoverNeighborsRefreshed();
    const DetectionType detection = reveng.discoverDetectionType();
    const bool retained = reveng.discoverSamplerRetention();
    const int capacity =
        args.quick ? -1 : reveng.discoverAggressorCapacity();
    const bool per_bank =
        args.quick ? spec.traits().perBank
                   : reveng.discoverPerBankScope();

    table.addRow(name, trrVersionName(spec.trr),
                 logFmt("1/", period),
                 logFmt("1/", spec.traits().trrToRefPeriod),
                 neighbours, detectionTypeName(detection),
                 capacity < 0 ? std::string("-")
                              : std::to_string(capacity),
                 per_bank ? "per-bank" : "chip-wide",
                 retained ? "yes" : "no");
    std::cerr << "." << std::flush;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    TextTable table("Vendor B observations (B1-B5)");
    table.header({"Module", "Version", "TRR/REF", "(paper)",
                  "Neighbours", "Detection", "Capacity", "Scope",
                  "Sample survives TRR (B5)"});

    std::vector<std::string> modules = {"B0", "B9", "B13"};
    if (!args.module.empty())
        modules = {args.module};
    for (const std::string &name : modules)
        analyze(name, args, table);
    std::cerr << "\n";
    table.print(std::cout);
    std::cout
        << "\nPaper: TRR on every 4th (B_TRR1), 9th (B_TRR2), 2nd\n"
           "(B_TRR3) REF; a single sampled row shared across banks\n"
           "(per-bank for B_TRR3); the sample survives TRR refreshes.\n";
    return 0;
}
