/**
 * @file
 * Reproduces the §6.1 vendor-A experiments (Observations A1-A8) on a
 * simulated A_TRR1 module, black-box, and prints each observation next
 * to the paper's statement.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/reveng.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);
    if (args.module.empty())
        args.module = "A5";

    const ModuleSpec spec = *findModuleSpec(args.module);
    if (spec.vendor != 'A')
        fatal("this bench targets vendor A modules");
    DramModule module(spec, args.seed);
    SoftMcHost host(module);

    TrrRevengConfig cfg;
    cfg.scoutRowEnd = 8 * 1024;
    cfg.consistencyChecks = args.quick ? 15 : 40;
    TrrReveng reveng(host,
                     DiscoveredMapping(spec.scramble, spec.rowsPerBank),
                     cfg);

    TextTable table(logFmt("Vendor A observations (module ",
                           spec.name, ", ", trrVersionName(spec.trr),
                           ")"));
    table.header({"Obs", "Paper", "Measured"});

    const int period = reveng.discoverTrrRefPeriod();
    table.addRow("A1", "every 9th REF performs TRR",
                 logFmt("every ", period, "th REF"));

    const int neighbours = reveng.discoverNeighborsRefreshed();
    table.addRow("A2",
                 spec.trr == TrrVersion::kATrr1
                     ? "4 closest rows refreshed (A-+1, A-+2)"
                     : "2 closest rows refreshed (A-+1)",
                 logFmt(neighbours, " profiled rows refreshed"));

    const DetectionType detection = reveng.discoverDetectionType();
    table.addRow("A3", "two TREF types over a counter table",
                 detectionTypeName(detection));

    const bool resets = reveng.discoverCounterResetOnDetect();
    table.addRow("A6", "detection resets the row's counter",
                 resets ? "counters reset on detection"
                        : "no reset observed");

    const bool persists = reveng.discoverTablePersistence();
    table.addRow("A7", "entries persist until evicted",
                 persists ? "entries persist (TREF_b keeps firing)"
                          : "entries expire");

    if (!args.quick) {
        const int capacity = reveng.discoverAggressorCapacity();
        table.addRow("A4", "16-entry per-bank counter table",
                     logFmt("capacity ", capacity));

        const bool evict_min = reveng.discoverEvictMinPolicy();
        table.addRow("A5", "insertion evicts the minimum counter",
                     evict_min ? "least-hammered row never detected"
                               : "low-count row detected");

        const bool per_bank = reveng.discoverPerBankScope();
        table.addRow("A4b", "per-bank detection state",
                     per_bank ? "per-bank" : "chip-wide");

        const int regular = reveng.discoverRegularRefreshPeriod();
        table.addRow("A8", "row regularly refreshed every 3758 REFs",
                     logFmt("every ", regular, " REFs"));
    } else {
        std::cout << "(--quick: skipping A4/A5/A8 slow analyses)\n";
    }

    table.print(std::cout);
    return 0;
}
