/**
 * @file
 * Fuzz-harness micro-benchmarks (google-benchmark): program
 * generation, full oracle-suite checks, and delta-debugging
 * minimization. These bound what a CI fuzz-smoke budget buys — the
 * ~60 s smoke job must fit >= 500 programs, which puts a ceiling of
 * ~100 ms on one generate + oracle-suite round trip.
 */

#include <benchmark/benchmark.h>

#include "check/fuzzer.hh"
#include "check/minimizer.hh"
#include "check/oracles.hh"
#include "dram/module_spec.hh"

namespace
{

using namespace utrr;

void
BM_GenerateProgram(benchmark::State &state)
{
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);
    std::uint64_t index = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(fuzzer.generate(1, index++));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerateProgram);

void
BM_OracleSuite(benchmark::State &state)
{
    // One full check: production execution (traced) + reference
    // execution + the four oracles, including the second production
    // run of the determinism oracle.
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);
    const Program program = fuzzer.generate(1, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(runOracleSuite(spec, program));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OracleSuite);

void
BM_MinimizeSyntheticFailure(benchmark::State &state)
{
    // Minimize against a cheap predicate to isolate ddmin + protocol
    // repair cost from oracle cost.
    const ModuleSpec spec = *findModuleSpec("A0");
    const ProgramFuzzer fuzzer(spec);
    const Program program = fuzzer.generate(2, 1);
    const auto has_wait = [](const Program &candidate) {
        for (const Instr &instr : candidate.instructions())
            if (instr.op == Op::kWait)
                return true;
        return false;
    };
    for (auto _ : state)
        benchmark::DoNotOptimize(
            minimizeProgram(spec, program, has_wait));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinimizeSyntheticFailure);

} // namespace

BENCHMARK_MAIN();
