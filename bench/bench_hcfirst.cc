/**
 * @file
 * Reproduces Table 1's HC_first column: the minimum per-aggressor
 * activation count of an interleaved double-sided attack that causes
 * the first bit flip, measured with refresh disabled over a sample of
 * rows per module (binary search per row, minimum over rows).
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "core/mapping_reveng.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

namespace
{

/** True if H hammers per aggressor flip the victim. */
bool
flipsAt(SoftMcHost &host, const DiscoveredMapping &mapping, Row victim,
        int hammers)
{
    const Row a0 = mapping.toLogical(victim - 1);
    const Row a1 = mapping.toLogical(victim + 1);
    const Row v = mapping.toLogical(victim);
    host.writeRow(0, v, DataPattern::allOnes());
    host.writeRow(0, a0, DataPattern::allZeros());
    host.writeRow(0, a1, DataPattern::allZeros());
    if (host.module().spec().paired()) {
        // Paired modules: the victim couples only to its pair row.
        host.hammer(0, mapping.toLogical(victim ^ 1), hammers);
    } else {
        host.hammerInterleaved({{0, a0}, {0, a1}}, {hammers, hammers});
    }
    return host.readRow(0, v).countFlipsVs(DataPattern::allOnes(), v) >
        0;
}

int
hcFirstOfRow(SoftMcHost &host, const DiscoveredMapping &mapping,
             Row victim, int hi_limit)
{
    // Exponential bracket, then binary search.
    int hi = 1'024;
    while (hi < hi_limit && !flipsAt(host, mapping, victim, hi))
        hi *= 2;
    if (hi >= hi_limit)
        return -1;
    int lo = hi / 2;
    while (hi - lo > std::max(1, hi / 16)) {
        const int mid = lo + (hi - lo) / 2;
        if (flipsAt(host, mapping, victim, mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    TextTable table("Table 1 HC_first column (measured vs configured)");
    table.header({"Module", "HC_first measured", "HC_first (Table 1)",
                  "rows sampled"});

    for (const ModuleSpec &spec : args.selectedModules()) {
        ModuleSpec no_trr = spec;
        no_trr.trr = TrrVersion::kNone; // refresh/TRR disabled anyway
        DramModule module(no_trr, args.seed);
        SoftMcHost host(module);
        const DiscoveredMapping mapping(spec.scramble,
                                        spec.rowsPerBank);

        const int samples = args.positionsOrDefault(12);
        int best = -1;
        for (int i = 0; i < samples; ++i) {
            Row victim = 16 +
                static_cast<Row>((static_cast<std::int64_t>(
                                      spec.rowsPerBank - 32) *
                                  i) /
                                 samples);
            if (spec.paired())
                victim &= ~1;
            const int hc = hcFirstOfRow(host, mapping, victim,
                                        8 * 1024 * 1024);
            if (hc > 0)
                best = best < 0 ? hc : std::min(best, hc);
        }
        table.addRow(spec.name,
                     best < 0 ? std::string("-") : std::to_string(best),
                     logFmt(static_cast<int>(spec.hcFirst)),
                     samples);
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout
        << "\nThe measured minimum approaches the configured HC_first\n"
           "as more rows are sampled (the weakest row of the bank\n"
           "defines it); sampled sweeps overestimate slightly.\n";
    return 0;
}
