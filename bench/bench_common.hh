/**
 * @file
 * Shared helpers for the bench binaries.
 *
 * Every bench regenerates one of the paper's tables or figure series.
 * Common flags:
 *   --module <NAME>   restrict to one module (e.g. A5)
 *   --vendor <A|B|C>  restrict to one vendor
 *   --positions <N>   victim positions sampled per bank sweep
 *   --full            full-scale run (all positions / slow analyses)
 *   --quick           minimal run (CI-sized)
 *   --seed <N>        simulation seed
 */

#ifndef UTRR_BENCH_BENCH_COMMON_HH
#define UTRR_BENCH_BENCH_COMMON_HH

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "dram/module_spec.hh"

namespace utrr::bench
{

struct BenchArgs
{
    std::string module;
    char vendor = 0;
    int positions = 0; // 0 = bench default
    bool full = false;
    bool quick = false;
    std::uint64_t seed = 2021;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal(arg + " needs a value");
                return argv[++i];
            };
            if (arg == "--module") {
                args.module = next();
            } else if (arg == "--vendor") {
                args.vendor = next()[0];
            } else if (arg == "--positions") {
                args.positions = std::stoi(next());
            } else if (arg == "--full") {
                args.full = true;
            } else if (arg == "--quick") {
                args.quick = true;
            } else if (arg == "--seed") {
                args.seed = std::stoull(next());
            } else if (arg == "--help" || arg == "-h") {
                std::cout
                    << "flags: --module NAME --vendor A|B|C "
                       "--positions N --full --quick --seed N\n";
                std::exit(0);
            } else {
                fatal("unknown flag: " + arg);
            }
        }
        return args;
    }

    /** The module specs this run covers. */
    std::vector<ModuleSpec>
    selectedModules() const
    {
        std::vector<ModuleSpec> specs;
        for (const ModuleSpec &spec : allModuleSpecs()) {
            if (!module.empty() && spec.name != module)
                continue;
            if (vendor != 0 && spec.vendor != vendor)
                continue;
            specs.push_back(spec);
        }
        if (specs.empty())
            fatal("no modules match the selection");
        return specs;
    }

    int
    positionsOrDefault(int dflt) const
    {
        if (positions > 0)
            return positions;
        if (quick)
            return std::max(2, dflt / 4);
        if (full)
            return dflt * 8;
        return dflt;
    }
};

} // namespace utrr::bench

#endif // UTRR_BENCH_BENCH_COMMON_HH
