/**
 * @file
 * Reproduces the paper's comparison with TRRespass [24] (§1, §8):
 * the black-box many-sided fuzzer finds bit flips on some modules but
 * fails on most, while the U-TRR insight-driven custom patterns flip
 * rows on every module.
 *
 * Paper numbers: TRRespass induces flips on 13 of 42 DDR4 modules;
 * U-TRR on all 45.
 */

#include <iostream>

#include "attack/sweep.hh"
#include "attack/trrespass.hh"
#include "bench_common.hh"
#include "softmc/host.hh"

using namespace utrr;
using namespace utrr::bench;

int
main(int argc, char **argv)
{
    const BenchArgs args = BenchArgs::parse(argc, argv);
    setLogLevel(LogLevel::kSilent);

    TextTable table("TRRespass fuzzing vs U-TRR custom patterns");
    table.header({"Module", "TRR", "TRRespass best", "flips",
                  "U-TRR flips", "U-TRR %vuln"});

    int trrespass_cracked = 0;
    int utrr_cracked = 0;
    int modules = 0;

    // One representative module per Table-1 group keeps the default
    // run short; --vendor/--module widen or narrow it.
    std::vector<std::string> names = {"A0", "A5",  "A13", "B0", "B1",
                                      "B7", "B9",  "B13", "C0", "C7",
                                      "C9", "C12"};
    if (!args.module.empty())
        names = {args.module};

    for (const std::string &name : names) {
        const ModuleSpec spec = *findModuleSpec(name);
        if (args.vendor != 0 && spec.vendor != args.vendor)
            continue;
        ++modules;
        DramModule module(spec, args.seed);
        SoftMcHost host(module);
        const DiscoveredMapping mapping(spec.scramble,
                                        spec.rowsPerBank);

        TrrespassFuzzer::Config fuzz_cfg;
        fuzz_cfg.attempts = args.quick ? 6 : 16;
        fuzz_cfg.positions = 2;
        TrrespassFuzzer fuzzer(host, mapping, fuzz_cfg, args.seed);
        const FuzzResult fuzz = fuzzer.fuzz();
        trrespass_cracked += fuzz.anyFlips() ? 1 : 0;

        SweepConfig sweep_cfg;
        sweep_cfg.positions = args.positionsOrDefault(8);
        const SweepResult custom = sweepCustomPattern(
            host, mapping, defaultCustomParams(spec), sweep_cfg);
        utrr_cracked += custom.vulnerableRows > 0 ? 1 : 0;

        table.addRow(name, trrVersionName(spec.trr),
                     fuzz.anyFlips() ? fuzz.best.describe()
                                     : std::string("no flips"),
                     fuzz.bestFlips, custom.maxRowFlips,
                     fmtPercent(custom.vulnerableFraction()));
        std::cerr << "." << std::flush;
    }
    std::cerr << "\n";
    table.print(std::cout);
    std::cout << "\nModules cracked: TRRespass " << trrespass_cracked
              << "/" << modules << ", U-TRR " << utrr_cracked << "/"
              << modules
              << ".  (Paper: TRRespass 13/42, U-TRR 45/45.)\n";
    return 0;
}
